#include "serve/server.hpp"

#include "common/thread_pool.hpp"
#include "telemetry/json.hpp"

namespace xd::serve {

/// One response slot. The writer answers slots strictly in the order the
/// reader enqueued them, so responses stream back in submission order per
/// connection no matter how the pool interleaves execution. A slot is
/// either an immediate text reply (error/overload/stats — `text` set) or a
/// pending op/graph whose future still has to be consumed. The Request
/// lives here so the operand pools outlive the worker that references them.
struct Server::Pending {
  Request req;
  std::string text;  ///< nonempty: immediate reply, no future to wait on
  bool has_future = false;
  std::future<host::Outcome> fut;
  std::future<host::GraphOutcome> gfut;
};

struct Server::Connection {
  std::size_t id = 0;
  Socket sock;
  telemetry::Session tel{16, 1};  ///< serve.conn.* shard, merged at close
  std::size_t line_no = 0;  ///< physical lines seen (reader thread only)

  std::mutex mu;
  std::condition_variable can_push;  ///< reader waits: queue below bound
  std::condition_variable can_pop;   ///< writer waits: queue non-empty
  std::deque<std::unique_ptr<Pending>> queue;
  bool reader_done = false;  ///< no more slots will be enqueued
  bool send_ok = true;       ///< writer stops sending after a send failure
  bool draining = false;     ///< drain(): enqueue stops blocking on the bound

  std::thread reader;
  std::thread writer;
  std::atomic<int> threads_done{0};  ///< 2 = joinable without blocking
};

Server::Server(const ServerConfig& cfg)
    : cfg_(cfg), runtime_([&] {
        // The shared Runtime records into the server's session: worker
        // shards merge at op completion, so host.runtime.* histograms and
        // gauges aggregate every connection's traffic.
        host::ContextConfig ec = cfg.engine;
        ec.telemetry = &session_;
        return ec;
      }()) {
  listener_ = tcp_listen(cfg_.host, cfg_.port, cfg_.backlog, &port_);
}

Server::~Server() { drain(); }

void Server::serve() {
  for (;;) {
    Socket sock = tcp_accept(listener_);
    if (!sock.valid() || draining_.load()) break;
    // Bound every send up front: a client that stops reading makes the
    // writer's send fail within the timeout instead of blocking forever
    // (SO_SNDTIMEO set later would not wake a send already in progress).
    sock.set_send_timeout_ms(cfg_.send_timeout_ms);
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    Connection& c = *conn;
    {
      // Register and spawn under the lock: drain() pops under the same
      // lock, so it either never sees this connection (we saw draining_
      // first and dropped it) or sees it with both threads assigned.
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (draining_.load()) break;  // late accept: close the socket, stop
      accepted_.fetch_add(1);
      c.id = static_cast<std::size_t>(accepted_.load());
      conns_.push_back(std::move(conn));
      c.reader = std::thread([this, &c] { reader_main(c); });
      c.writer = std::thread([this, &c] { writer_main(c); });
    }
    reap_finished();
  }
}

void Server::drain() {
  draining_.store(true);
  // Shutdown only — serve() may still be blocked in accept on this fd, so
  // the fd must stay valid until ~Server (closing here would race the
  // accept loop's read of it; shutdown alone wakes accept with an error).
  listener_.shutdown_both();
  // Pop-and-join until the registry is empty; safe to run concurrently
  // with serve() (registration holds the same lock) and idempotently.
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    // Wake the reader out of recv AND out of a full-reply-queue enqueue
    // wait (the draining flag lifts the bound; the queue stays bounded by
    // what was already received). In-flight ops finish and their replies
    // flush before the writer exits — a drain never drops admitted work —
    // and a peer that stopped reading cannot hang us: every send carries
    // SO_SNDTIMEO (set at accept), so a stuck writer fails its send within
    // the timeout and drains the rest of the queue without sending.
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->draining = true;
    }
    conn->can_push.notify_all();
    conn->sock.shutdown_read();
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  publish_gauges();
}

void Server::reap_finished() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->threads_done.load() == 2) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->writer.joinable()) (*it)->writer.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Server::admit() {
  for (std::size_t cur = inflight_.load();;) {
    if (cur >= cfg_.max_inflight) return false;
    if (inflight_.compare_exchange_weak(cur, cur + 1)) return true;
  }
}

void Server::enqueue(Connection& conn, std::unique_ptr<Pending> p) {
  std::unique_lock<std::mutex> lock(conn.mu);
  // Bounded: a client that writes requests without reading responses stops
  // being read from once this fills (the reader blocks here, recv stops,
  // the client's sends eventually block on TCP). Compute admission never
  // blocks — past max_inflight the slot is an immediate shed reply.
  conn.can_push.wait(lock, [&] {
    return conn.queue.size() < cfg_.reply_queue || conn.draining;
  });
  conn.queue.push_back(std::move(p));
  conn.can_pop.notify_one();
}

void Server::handle_line(Connection& conn, std::string line, bool truncated) {
  lines_.fetch_add(1);
  conn.tel.counter("serve.conn.lines").add();
  auto p = std::make_unique<Pending>();
  p->req.line = conn.line_no;

  if (truncated) {
    errors_.fetch_add(1);
    conn.tel.counter("serve.conn.parse_errors").add();
    p->req.parse_error = oversize_error();
    p->text = error_record(p->req, p->req.parse_error);
    enqueue(conn, std::move(p));
    return;
  }
  // Control line: an in-stream stats snapshot (exact line `stats`),
  // answered in order like any other record. Intercepted here — it is a
  // serving-layer query, not part of the shared batch grammar.
  if (line == "stats") {
    p->text = stats_record(conn.line_no);
    enqueue(conn, std::move(p));
    return;
  }

  // Materialization and submission run inside a try: parse_record bounds
  // problem sizes up front (ParseLimits), but should an allocation still
  // fail (memory pressure from concurrent connections), the line becomes
  // an error record instead of an exception escaping the reader thread and
  // taking the whole shared daemon down via std::terminate.
  bool admitted = false;
  try {
    parse_record(line, conn.line_no, runtime_.config(), p->req, cfg_.limits);
    if (!p->req.parse_error.empty()) {
      errors_.fetch_add(1);
      conn.tel.counter("serve.conn.parse_errors").add();
      p->text = error_record(p->req, p->req.parse_error);
      enqueue(conn, std::move(p));
      return;
    }
    if (p->req.cfg_override) {
      // The CLI honors per-line engine knobs with a per-job Context; the
      // server's one shared Runtime cannot, so it refuses explicitly rather
      // than silently computing under different hardware than asked for.
      errors_.fetch_add(1);
      conn.tel.counter("serve.conn.rejected").add();
      p->text = error_record(p->req, p->req.cfg_override_why);
      enqueue(conn, std::move(p));
      return;
    }
    if (!admit()) {
      shed_.fetch_add(1);
      conn.tel.counter("serve.conn.shed").add();
      p->text = overload_record(conn.line_no);
      enqueue(conn, std::move(p));
      return;
    }
    admitted = true;
    // Submit before enqueueing: the Pending owns the operand pools (deque
    // storage — element addresses survive the moves above), and the writer
    // consumes the future before the Pending dies, so operand lifetime
    // spans the whole execution.
    if (p->req.is_graph) {
      p->gfut = runtime_.submit_graph(p->req.graph);
    } else {
      // Hot shapes go through an interned PlanHandle (invalid handle =
      // normal LRU path); identical outcomes either way — the handle only
      // skips the per-op cache probe.
      p->fut = runtime_.submit(p->req.desc, pinned_for(p->req.desc));
    }
    p->has_future = true;
  } catch (const std::exception& e) {
    if (admitted) inflight_.fetch_sub(1);
    if (!p) return;  // enqueue itself failed; nothing left to answer with
    p->has_future = false;
    errors_.fetch_add(1);
    conn.tel.counter("serve.conn.internal_errors").add();
    p->text = error_record(p->req, cat("internal error: ", e.what()));
  }
  enqueue(conn, std::move(p));
}

void Server::reader_main(Connection& conn) {
  // Backstop try/catch: handle_line already converts per-line failures into
  // error records, so anything reaching here (allocation failure in the
  // framer under extreme memory pressure) just ends THIS connection's read
  // loop — an exception escaping a thread main would std::terminate the
  // whole shared daemon.
  try {
    LineFramer framer(kMaxLineBytes);
    char buf[4096];
    std::string line;
    bool truncated = false;
    for (;;) {
      const long got = conn.sock.recv_some(buf, sizeof buf);
      if (got <= 0) break;  // EOF, error, or drain's shutdown_read
      conn.tel.counter("serve.conn.bytes_in").add(static_cast<u64>(got));
      framer.feed(buf, static_cast<std::size_t>(got));
      while (framer.next(line, truncated)) {
        ++conn.line_no;
        if (!truncated && !is_record_line(line)) continue;
        handle_line(conn, std::move(line), truncated);
      }
    }
    // An unterminated final record still gets an answer (the framer kept
    // its bounded prefix), so "every record line is answered" holds at EOF
    // too.
    if (framer.pending() > 0) {
      framer.feed("\n");
      while (framer.next(line, truncated)) {
        ++conn.line_no;
        if (!truncated && !is_record_line(line)) continue;
        handle_line(conn, std::move(line), truncated);
      }
    }
  } catch (...) {
    errors_.fetch_add(1);
  }
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    conn.reader_done = true;
  }
  conn.can_pop.notify_one();
  conn.threads_done.fetch_add(1);
}

void Server::writer_main(Connection& conn) {
  // conn.tel belongs to the reader while it runs (registry maps are not
  // thread-safe); the writer tallies its bytes locally and folds them in
  // after the loop, when reader_done guarantees the reader is finished.
  u64 bytes_out = 0;
  for (;;) {
    std::unique_ptr<Pending> p;
    {
      std::unique_lock<std::mutex> lock(conn.mu);
      conn.can_pop.wait(
          lock, [&] { return !conn.queue.empty() || conn.reader_done; });
      if (conn.queue.empty()) break;  // reader done and queue drained
      p = std::move(conn.queue.front());
      conn.queue.pop_front();
    }
    conn.can_push.notify_one();

    std::string text;
    if (!p->has_future) {
      text = std::move(p->text);
    } else {
      // Always consume the future — even after a send failure — so the
      // in-flight count comes back down and the operand pools stay alive
      // until the worker is done with them.
      try {
        text = p->req.is_graph ? graph_record(p->req, p->gfut.get())
                               : outcome_record(p->req, p->fut.get());
        completed_.fetch_add(1);
      } catch (const std::exception& e) {
        text = error_record(p->req, e.what());
        errors_.fetch_add(1);
      }
      inflight_.fetch_sub(1);
    }
    if (conn.send_ok) {
      text += '\n';
      if (!conn.sock.send_all(text)) {
        conn.send_ok = false;  // peer gone; keep consuming, stop sending
      } else {
        bytes_out += text.size();
      }
    }
  }
  // Flush done: half-close so the client sees EOF after the last record,
  // then fold this connection's counters into the shared registry.
  conn.sock.shutdown_write();
  conn.tel.counter("serve.conn.bytes_out").add(bytes_out);
  session_.merge(conn.tel, 0);
  conn.threads_done.fetch_add(1);
}

host::PlanHandle Server::pinned_for(const host::OpDesc& desc) {
  if (cfg_.pin_capacity == 0) return {};
  const host::PlanKey key = host::PlanKey::from(desc, runtime_.config().tune);
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    auto it = pins_.find(key);
    if (it != pins_.end()) return it->second;
    if (pins_.size() >= cfg_.pin_capacity) return {};
  }
  // Build outside pins_mu_ (plan construction may tune/probe); concurrent
  // first-seers race benignly — PlanCache::pin is idempotent per key.
  host::PlanHandle h;
  try {
    h = runtime_.pin_plan(desc);
  } catch (...) {
    // Invalid descriptor: let the ordinary submit path produce the error
    // record so the reply text matches the unpinned server byte for byte.
    return {};
  }
  std::lock_guard<std::mutex> lock(pins_mu_);
  if (pins_.size() < cfg_.pin_capacity) pins_.emplace(key, h);
  return h;
}

ServerCounters Server::counters() const {
  ServerCounters c;
  c.accepted = accepted_.load();
  c.lines = lines_.load();
  c.completed = completed_.load();
  c.errors = errors_.load();
  c.shed = shed_.load();
  return c;
}

void Server::publish_gauges() {
  auto lock = session_.lock();
  session_.gauge("serve.accepted").set(static_cast<double>(accepted_.load()));
  session_.gauge("serve.lines").set(static_cast<double>(lines_.load()));
  session_.gauge("serve.completed")
      .set(static_cast<double>(completed_.load()));
  session_.gauge("serve.errors").set(static_cast<double>(errors_.load()));
  session_.gauge("serve.shed").set(static_cast<double>(shed_.load()));
  session_.gauge("serve.inflight").set(static_cast<double>(inflight_.load()));
}

std::string Server::stats_record(std::size_t line_no) {
  publish_gauges();  // keep the exported registry fresh on every snapshot
  telemetry::JsonWriter w;
  w.begin_object();
  w.kv("op", std::string_view("stats"));
  w.kv("line", static_cast<u64>(line_no));
  const auto rs = runtime_.stats();
  w.kv("submitted", rs.submitted);
  w.kv("completed", rs.completed);
  w.kv("failed", rs.failed);
  w.kv("shed", shed_.load());
  w.kv("inflight", static_cast<u64>(inflight_.load()));
  w.kv("max_inflight", static_cast<u64>(cfg_.max_inflight));
  w.kv("connections", static_cast<u64>(accepted_.load()));
  w.kv("workers", static_cast<u64>(runtime_.workers()));
  // Plan-cache and scheduler behavior: how often the shared cache (or a
  // pinned handle) absorbed a plan build, and how the pool's work-stealing
  // deques split execution between cache-hot local pops and steals.
  const host::PlanCache& pc = runtime_.plan_cache();
  const u64 plan_hits = pc.hits(), plan_misses = pc.misses();
  w.kv("plan_hits", plan_hits);
  w.kv("plan_misses", plan_misses);
  w.kv("plan_hit_rate",
       plan_hits + plan_misses
           ? static_cast<double>(plan_hits) /
                 static_cast<double>(plan_hits + plan_misses)
           : 0.0);
  w.kv("plan_pinned", static_cast<u64>(pc.pinned_count()));
  w.kv("pool_steals", static_cast<u64>(ThreadPool::shared().steals()));
  w.kv("pool_local_pops", static_cast<u64>(ThreadPool::shared().local_pops()));
  {
    auto lock = session_.lock();
    for (const char* name :
         {"host.runtime.queue_wait", "host.runtime.exec", "host.runtime.e2e"}) {
      const telemetry::Metric* m = session_.metrics().find(name);
      if (!m) continue;
      const std::string_view base =
          std::string_view(name).substr(sizeof("host.runtime.") - 1);
      w.kv(cat(base, "_p50_us"),
           telemetry::MetricsRegistry::percentile(*m, 0.50));
      w.kv(cat(base, "_p95_us"),
           telemetry::MetricsRegistry::percentile(*m, 0.95));
      w.kv(cat(base, "_p99_us"),
           telemetry::MetricsRegistry::percentile(*m, 0.99));
    }
  }
  w.end_object();
  return w.str();
}

}  // namespace xd::serve
