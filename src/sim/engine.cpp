#include "sim/engine.hpp"

namespace xd::sim {

void Engine::step() {
  for (Component* c : components_) c->cycle(now_);
  for (auto& fn : commits_) fn();
  ++now_;
}

void Engine::run(Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) step();
}

Cycle Engine::run_until(const std::function<bool()>& done, Cycle max_cycles) {
  const Cycle start = now_;
  while (!done()) {
    if (now_ - start >= max_cycles) {
      throw SimError(cat("simulation exceeded cycle budget of ", max_cycles));
    }
    step();
  }
  return now_ - start;
}

Cycle Engine::run_until_idle(Cycle max_cycles) {
  return run_until(
      [this] {
        for (Component* c : components_) {
          if (c->busy()) return false;
        }
        return true;
      },
      max_cycles);
}

}  // namespace xd::sim
