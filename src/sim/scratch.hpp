// Recycled per-thread simulation scaffolds for the tree-reduction engines.
//
// The dot and row-major GEMV engines share one hardware scaffold: a
// multiplier bank feeding an adder tree, a small FIFO, and the reduction
// circuit. Constructing that scaffold inside every run() costs ~60 heap
// allocations (the reduction circuit alone owns 2*alpha row buffers of
// alpha words each) — for a tiny op that construction dominated the whole
// execution. This pool keeps a few fully-constructed scaffolds per thread
// and hands them out reset-for-reuse, so the steady-state small-op path
// allocates only its Outcome.
//
// A scaffold is reusable only for a matching geometry (k, pipeline depths,
// FIFO capacity) AND the same active FP backend: the tree and the
// circuit's adder capture the backend's arithmetic at construction, so a
// ScopedBackend switch (the fuzz harness's backend-equivalence runs) must
// never see a scaffold built under the other backend. The backend address
// is part of the key; a mismatch builds fresh.
//
// Acquisition is a lease: engines hold the scaffold for exactly one run()
// (no suspension points), so per-thread caching is safe — a thread runs
// one engine at a time, and the blocked-GEMV / graph paths that run several
// engines do so sequentially. Re-entrant acquisition (never happens today)
// would simply construct an uncached scaffold.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/ring_fifo.hpp"
#include "fp/fpu.hpp"
#include "reduce/reduction_circuit.hpp"

namespace xd::sim {

/// The shared scaffold: everything allocation-heavy a tree-reduction engine
/// needs per run, plus two reusable staging vectors (operand bit panels).
struct TreeScratch {
  struct Key {
    unsigned k = 0;
    unsigned adder_stages = 0;
    unsigned multiplier_stages = 0;
    std::size_t fifo_cap = 0;
    const fp::Backend* backend = nullptr;
    bool operator==(const Key&) const = default;
  };

  TreeScratch(const Key& key);

  Key key;
  fp::AdderTree tree;
  reduce::ReductionCircuit red;
  fp::MultiplierBank mults;
  RingFifo<std::pair<u64, bool>> red_fifo;
  std::vector<u64> abits;  ///< reusable operand-bits staging
  std::vector<u64> xbits;
  bool in_use = false;

  /// All components back to the just-constructed state (storage kept).
  void reset();
};

/// Lease on a TreeScratch: from the calling thread's cache when a matching
/// scaffold is free (reset before handout), freshly constructed otherwise.
/// Returned to the cache — or destroyed, for the uncached overflow case —
/// when the lease goes out of scope.
class TreeScratchLease {
 public:
  explicit TreeScratchLease(const TreeScratch::Key& key);
  ~TreeScratchLease();
  TreeScratchLease(const TreeScratchLease&) = delete;
  TreeScratchLease& operator=(const TreeScratchLease&) = delete;

  TreeScratch& operator*() { return *scratch_; }
  TreeScratch* operator->() { return scratch_; }

 private:
  TreeScratch* scratch_;
  bool owned_;  ///< true: constructed outside the cache, freed on release
};

}  // namespace xd::sim
