// Cycle-level event tracing.
//
// The paper's design flow debugs the VHDL in ModelSim; the simulator's
// equivalent observability is this trace: components emit timestamped events
// (buffer swaps, stalls, result emissions, hazards) into a bounded ring
// buffer that tests and tools can filter and render. Tracing is off by
// default and costs one branch per emit site when disabled: sites gate on
// enabled() (or a null sink pointer) before building any event text.
//
// The ring is a preallocated circular buffer of `capacity` slots; emitting
// into a previously used slot reuses its strings' storage, so a hot loop
// emitting short events settles into zero allocations per emit.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/util.hpp"

namespace xd::sim {

struct TraceEvent {
  u64 cycle = 0;
  std::string source;
  std::string what;
};

class Trace {
 public:
  /// Keep at most `capacity` most-recent events (circular buffer,
  /// preallocated up front).
  explicit Trace(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity),
        slots_(capacity == 0 ? 1 : capacity) {}

  /// One-branch fast path for emit sites: skip event-text construction
  /// entirely when this is false.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void emit(u64 cycle, std::string_view source, std::string_view what) {
    if (!enabled_) return;
    TraceEvent& e = slots_[(head_ + size_) % capacity_];
    if (size_ < capacity_) {
      ++size_;
    } else {
      head_ = (head_ + 1) % capacity_;  // overwrote the oldest slot
    }
    e.cycle = cycle;
    e.source.assign(source);  // reuses the slot's string capacity
    e.what.assign(what);
    ++total_;
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    for_each([&](const TraceEvent& e) { out.push_back(e); });
    return out;
  }

  /// Visit retained events oldest-first without copying.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) {
      fn(slots_[(head_ + i) % capacity_]);
    }
  }

  std::size_t size() const { return size_; }
  u64 total_emitted() const { return total_; }
  std::size_t capacity() const { return capacity_; }

  /// Events whose source contains `needle`.
  std::vector<TraceEvent> filter(std::string_view needle) const {
    std::vector<TraceEvent> out;
    for_each([&](const TraceEvent& e) {
      if (e.source.find(needle) != std::string::npos) out.push_back(e);
    });
    return out;
  }

  /// Count of retained events whose text contains `needle`.
  std::size_t count_containing(std::string_view needle) const {
    std::size_t n = 0;
    for_each([&](const TraceEvent& e) {
      if (e.what.find(needle) != std::string::npos) ++n;
    });
    return n;
  }

  /// "cycle  source  what" lines for the last `n` events.
  std::string render(std::size_t n = 64) const {
    std::string out;
    const std::size_t start = size_ > n ? size_ - n : 0;
    for (std::size_t i = start; i < size_; ++i) {
      const TraceEvent& e = slots_[(head_ + i) % capacity_];
      out += cat(e.cycle, "  ", e.source, "  ", e.what, "\n");
    }
    return out;
  }

  void clear() {
    head_ = size_ = 0;
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> slots_;
  std::size_t head_ = 0;  ///< index of the oldest retained event
  std::size_t size_ = 0;  ///< retained events (<= capacity_)
  u64 total_ = 0;
  bool enabled_ = true;
};

}  // namespace xd::sim
