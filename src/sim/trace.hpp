// Cycle-level event tracing.
//
// The paper's design flow debugs the VHDL in ModelSim; the simulator's
// equivalent observability is this trace: components emit timestamped events
// (buffer swaps, stalls, result emissions, hazards) into a bounded ring
// buffer that tests and tools can filter and render. Tracing is off by
// default and costs one branch per emit site when disabled.
#pragma once

#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/util.hpp"

namespace xd::sim {

struct TraceEvent {
  u64 cycle = 0;
  std::string source;
  std::string what;
};

class Trace {
 public:
  /// Keep at most `capacity` most-recent events (ring buffer).
  explicit Trace(std::size_t capacity = 4096) : capacity_(capacity) {}

  void emit(u64 cycle, std::string_view source, std::string what) {
    events_.push_back(TraceEvent{cycle, std::string(source), std::move(what)});
    ++total_;
    if (events_.size() > capacity_) events_.pop_front();
  }

  const std::deque<TraceEvent>& events() const { return events_; }
  u64 total_emitted() const { return total_; }
  std::size_t capacity() const { return capacity_; }

  /// Events whose source contains `needle`.
  std::vector<TraceEvent> filter(std::string_view needle) const {
    std::vector<TraceEvent> out;
    for (const auto& e : events_) {
      if (e.source.find(needle) != std::string::npos) out.push_back(e);
    }
    return out;
  }

  /// Count of retained events whose text contains `needle`.
  std::size_t count_containing(std::string_view needle) const {
    std::size_t n = 0;
    for (const auto& e : events_) {
      if (e.what.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

  /// "cycle  source  what" lines for the last `n` events.
  std::string render(std::size_t n = 64) const {
    std::string out;
    const std::size_t start = events_.size() > n ? events_.size() - n : 0;
    for (std::size_t i = start; i < events_.size(); ++i) {
      const auto& e = events_[i];
      out += cat(e.cycle, "  ", e.source, "  ", e.what, "\n");
    }
    return out;
  }

  void clear() {
    events_.clear();
    total_ = 0;
  }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  u64 total_ = 0;
};

}  // namespace xd::sim
