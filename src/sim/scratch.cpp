#include "sim/scratch.hpp"

#include <memory>

namespace xd::sim {

namespace {

/// Scaffolds cached per thread. Two engines x a few distinct plan
/// geometries is the realistic working set; a workload cycling through
/// more than kCacheCap geometries on one thread falls back to
/// construct-per-run for the overflow, never unbounded memory.
constexpr std::size_t kCacheCap = 8;

/// Staging vectors above this many words are dropped at release: a single
/// huge GEMV must not pin its operand panel inside the cache forever.
constexpr std::size_t kKeepWords = 1u << 17;  // 128 Ki words = 1 MiB

thread_local std::vector<std::unique_ptr<TreeScratch>> t_cache;

}  // namespace

TreeScratch::TreeScratch(const Key& k)
    : key(k),
      tree(k.k, k.adder_stages),
      red(k.adder_stages),
      mults(k.k, k.multiplier_stages),
      red_fifo(k.fifo_cap) {}

void TreeScratch::reset() {
  tree.reset();
  red.reset_for_reuse();
  mults.reset();
  red_fifo.clear();
}

TreeScratchLease::TreeScratchLease(const TreeScratch::Key& key) {
  for (auto& entry : t_cache) {
    if (!entry->in_use && entry->key == key) {
      entry->in_use = true;
      entry->reset();
      scratch_ = entry.get();
      owned_ = false;
      return;
    }
  }
  auto fresh = std::make_unique<TreeScratch>(key);
  fresh->in_use = true;
  scratch_ = fresh.get();
  if (t_cache.size() < kCacheCap) {
    t_cache.push_back(std::move(fresh));
    owned_ = false;
  } else {
    fresh.release();
    owned_ = true;
  }
}

TreeScratchLease::~TreeScratchLease() {
  if (owned_) {
    delete scratch_;
    return;
  }
  if (scratch_->abits.capacity() > kKeepWords) {
    scratch_->abits = std::vector<u64>();
  }
  if (scratch_->xbits.capacity() > kKeepWords) {
    scratch_->xbits = std::vector<u64>();
  }
  scratch_->in_use = false;
}

}  // namespace xd::sim
