// The cycle-simulation engine: steps a set of components in lockstep and
// provides run-to-completion helpers with cycle budgets (so a wedged design
// fails loudly instead of spinning forever).
//
// The engine is also where phase spans get their cycle-accurate timestamps:
// attach a telemetry::SpanRecorder and bracket phases with begin_span() /
// end_span() — each records at the engine's current cycle, and spans nest
// (a span begun inside another becomes its child).
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "sim/component.hpp"
#include "telemetry/span.hpp"

namespace xd::sim {

class Engine {
 public:
  /// Components are owned by the caller (typically members of an
  /// architecture object) and must outlive the engine.
  void add(Component& c) { components_.push_back(&c); }

  /// Register a commit action (e.g. Reg/Fifo commit) run at the end of each
  /// step, after all components have evaluated.
  void add_commit(std::function<void()> fn) { commits_.push_back(std::move(fn)); }

  /// Execute exactly one clock cycle.
  void step();

  /// Run for `cycles` clock cycles.
  void run(Cycle cycles);

  /// Run until `done()` returns true; throws SimError if `max_cycles` elapse
  /// first. Returns the number of cycles executed by this call.
  Cycle run_until(const std::function<bool()>& done, Cycle max_cycles);

  /// Run until every component reports !busy(); same budget behaviour.
  Cycle run_until_idle(Cycle max_cycles);

  Cycle now() const { return now_; }

  /// Attach a span recorder (nullptr detaches). Must outlive the engine's
  /// use; begin_span/end_span are no-ops while detached.
  void attach_spans(telemetry::SpanRecorder* spans) { spans_ = spans; }
  telemetry::SpanRecorder* spans() const { return spans_; }

  /// Open / close a phase span at the current cycle (cycle-accurate,
  /// nestable). See telemetry::SpanRecorder.
  void begin_span(std::string_view name) {
    if (spans_) spans_->begin_at(name, now_);
  }
  void end_span() {
    if (spans_) spans_->end_at(now_);
  }

 private:
  std::vector<Component*> components_;
  std::vector<std::function<void()>> commits_;
  telemetry::SpanRecorder* spans_ = nullptr;
  Cycle now_ = 0;
};

}  // namespace xd::sim
