// The cycle-simulation engine: steps a set of components in lockstep and
// provides run-to-completion helpers with cycle budgets (so a wedged design
// fails loudly instead of spinning forever).
#pragma once

#include <functional>
#include <vector>

#include "sim/component.hpp"

namespace xd::sim {

class Engine {
 public:
  /// Components are owned by the caller (typically members of an
  /// architecture object) and must outlive the engine.
  void add(Component& c) { components_.push_back(&c); }

  /// Register a commit action (e.g. Reg/Fifo commit) run at the end of each
  /// step, after all components have evaluated.
  void add_commit(std::function<void()> fn) { commits_.push_back(std::move(fn)); }

  /// Execute exactly one clock cycle.
  void step();

  /// Run for `cycles` clock cycles.
  void run(Cycle cycles);

  /// Run until `done()` returns true; throws SimError if `max_cycles` elapse
  /// first. Returns the number of cycles executed by this call.
  Cycle run_until(const std::function<bool()>& done, Cycle max_cycles);

  /// Run until every component reports !busy(); same budget behaviour.
  Cycle run_until_idle(Cycle max_cycles);

  Cycle now() const { return now_; }

 private:
  std::vector<Component*> components_;
  std::vector<std::function<void()>> commits_;
  Cycle now_ = 0;
};

}  // namespace xd::sim
