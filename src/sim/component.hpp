// Synchronous cycle-simulation primitives.
//
// The simulated hardware in this repository is synchronous: every component
// sees the same clock and advances one cycle at a time. Components implement
// `cycle()` and are stepped by sim::Engine in registration order. Register
// semantics (value written this cycle visible next cycle) are provided by
// sim::Reg; bounded queues between components by sim::Fifo.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "common/util.hpp"

namespace xd::sim {

using Cycle = u64;

/// Base class for clocked hardware components.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Advance one clock cycle. `now` is the cycle index being executed
  /// (0-based); all components see the same `now` within a step.
  virtual void cycle(Cycle now) = 0;

  /// True while the component still has in-flight work. The engine's
  /// run_until_idle() stops when every component reports idle.
  virtual bool busy() const { return false; }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// A clocked register: writes made during a cycle become visible after
/// commit() (called by the engine at the end of each step). Models flip-flop
/// semantics so component evaluation order within a cycle cannot leak
/// combinational values.
template <typename T>
class Reg {
 public:
  explicit Reg(T initial = T{}) : current_(initial), next_(initial) {}

  const T& read() const { return current_; }
  void write(const T& v) {
    next_ = v;
    written_ = true;
  }
  bool written_this_cycle() const { return written_; }

  void commit() {
    if (written_) current_ = next_;
    written_ = false;
  }

 private:
  T current_;
  T next_;
  bool written_ = false;
};

/// Bounded FIFO channel between components with registered (one-cycle
/// visibility) semantics: an element pushed during cycle t can be popped at
/// cycle t+1 or later. Capacity 0 means unbounded.
template <typename T>
class Fifo {
 public:
  explicit Fifo(std::size_t capacity = 0, std::string name = "fifo")
      : capacity_(capacity), name_(std::move(name)) {}

  bool can_push() const {
    return capacity_ == 0 || committed_ + staged_.size() < capacity_;
  }
  void push(const T& v) {
    if (!can_push()) throw SimError(cat("fifo overflow: ", name_));
    staged_.push_back(v);
  }

  bool can_pop() const { return committed_ > 0; }
  T pop() {
    if (!can_pop()) throw SimError(cat("fifo underflow: ", name_));
    T v = std::move(data_.front());
    data_.pop_front();
    --committed_;
    return v;
  }
  const T& front() const {
    if (!can_pop()) throw SimError(cat("fifo underflow (front): ", name_));
    return data_.front();
  }

  /// Elements visible to consumers this cycle.
  std::size_t size() const { return committed_; }
  /// Total occupancy including elements staged this cycle.
  std::size_t occupancy() const { return committed_ + staged_.size(); }
  bool empty() const { return occupancy() == 0; }
  std::size_t capacity() const { return capacity_; }
  std::size_t peak_occupancy() const { return peak_; }

  void commit() {
    for (auto& v : staged_) data_.push_back(std::move(v));
    committed_ = data_.size();
    staged_.clear();
    peak_ = std::max(peak_, data_.size());
  }

 private:
  std::size_t capacity_;
  std::string name_;
  std::deque<T> data_;
  std::deque<T> staged_;
  std::size_t committed_ = 0;
  std::size_t peak_ = 0;
};

}  // namespace xd::sim
