// DRAM model (XD1 Level C memory, reached over the RapidArray transport).
//
// The FPGA reaches the Opteron's DRAM through the RapidArray Processor; the
// paper measures 1.3 GB/s achieved for the GEMV data staging and uses at most
// ~0.9 GB/s for GEMM projections against a 3.2 GB/s nominal link. We model
// the link as a bandwidth-throttled Channel in front of a WordMemory.
#pragma once

#include <string>

#include "mem/channel.hpp"
#include "mem/memory.hpp"

namespace xd::mem {

class Dram {
 public:
  /// `words` capacity, `words_per_cycle` sustained link rate at the design
  /// clock (see Channel::words_per_cycle_for to derive from GB/s).
  Dram(std::size_t words, double words_per_cycle, std::string name);

  void tick() { link_.tick(); }

  bool can_read() const { return link_.can_transfer(1.0); }
  bool can_write() const { return link_.can_transfer(1.0); }
  u64 read(std::size_t addr);
  void write(std::size_t addr, u64 value);

  WordMemory& storage() { return mem_; }
  const WordMemory& storage() const { return mem_; }
  Channel& link() { return link_; }
  const Channel& link() const { return link_; }

 private:
  WordMemory mem_;
  Channel link_;
};

}  // namespace xd::mem
