#include "mem/bram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace xd::mem {

BramBudget::BramBudget(u64 capacity_words, std::string owner)
    : capacity_(capacity_words), owner_(std::move(owner)) {
  require(capacity_words > 0, "BRAM budget needs positive capacity");
}

void BramBudget::allocate(const std::string& name, u64 words) {
  if (!try_allocate(name, words)) {
    throw ConfigError(cat("BRAM of ", owner_, " cannot hold '", name, "' (",
                          words, " words): ", used_, "/", capacity_,
                          " already used"));
  }
}

bool BramBudget::try_allocate(const std::string& name, u64 words) {
  for (const auto& r : regions_) {
    require(r.name != name, cat("BRAM region '", name, "' allocated twice"));
  }
  if (!fits(words)) return false;
  regions_.push_back(Region{name, words});
  used_ += words;
  return true;
}

void BramBudget::release(const std::string& name) {
  const auto it = std::find_if(regions_.begin(), regions_.end(),
                               [&](const Region& r) { return r.name == name; });
  require(it != regions_.end(), cat("BRAM region '", name, "' not allocated"));
  used_ -= it->words;
  regions_.erase(it);
}

u64 BramBudget::max_square_block_edge() const {
  return static_cast<u64>(
      std::floor(std::sqrt(static_cast<double>(free_words()) / 2.0)));
}

std::string BramBudget::report() const {
  std::ostringstream os;
  os << "BRAM(" << owner_ << "): " << used_ << "/" << capacity_ << " words\n";
  for (const auto& r : regions_) {
    os << "  " << r.name << ": " << r.words << " words\n";
  }
  return os.str();
}

}  // namespace xd::mem
