// Bandwidth-throttled transfer channel.
//
// Links in the machine model (FPGA<->SRAM, FPGA<->DRAM over RapidArray,
// FPGA<->FPGA RocketIO, chassis<->chassis) are modeled as channels with a
// sustained word rate per FPGA clock cycle. Rates are usually fractional
// (e.g. 1.3 GB/s DRAM at a 164 MHz design clock is ~0.99 words/cycle), so the
// channel uses a credit accumulator: every cycle adds `rate` credits, a
// transfer of w words consumes w credits, and credits never accumulate beyond
// one cycle's burst capability (no infinite banking of idle bandwidth).
#pragma once

#include <string>
#include <string_view>

#include "common/util.hpp"

namespace xd::telemetry {
class MetricsRegistry;
}

namespace xd::mem {

class Channel {
 public:
  /// `words_per_cycle` is the sustained rate; `burst_words` caps how much
  /// credit can pool while idle (defaults to one cycle's ceiling).
  Channel(double words_per_cycle, std::string name, double burst_words = 0.0);

  /// Advance one clock cycle: accrue credit. Inline — engines call this every
  /// simulated cycle.
  void tick() {
    ++cycles_;
    credit_ = credit_ + rate_ < burst_ ? credit_ + rate_ : burst_;
  }

  /// Can `words` be transferred this cycle?
  bool can_transfer(double words = 1.0) const { return credit_ >= words; }

  /// Consume credit for `words`; throws SimError if unavailable (the caller
  /// must check can_transfer first — real designs gate issue on ready lines).
  void transfer(double words = 1.0) {
    if (credit_ < words) throw_oversubscribed(words);
    credit_ -= words;
    transferred_ += words;
  }

  double rate() const { return rate_; }
  u64 cycles() const { return cycles_; }
  double words_transferred() const { return transferred_; }
  /// Achieved utilization = transferred / (rate * cycles).
  double utilization() const;

  /// Convert an achieved word count into bytes/s given a clock in Hz.
  double achieved_bytes_per_s(double clock_hz) const;

  const std::string& name() const { return name_; }
  void reset_counters();

  /// Snapshot this channel's counters into `reg` under `<prefix>.`:
  /// words (counter), cycles (counter), rate_words_per_cycle (gauge),
  /// utilization (gauge). Counters accumulate across repeated publishes.
  void publish(telemetry::MetricsRegistry& reg, std::string_view prefix) const;

  /// Helper: convert a bandwidth in bytes/s at `clock_hz` into words/cycle.
  static double words_per_cycle_for(double bytes_per_s, double clock_hz) {
    return bytes_per_s / (static_cast<double>(kWordBytes) * clock_hz);
  }

 private:
  [[noreturn]] void throw_oversubscribed(double words) const;

  double rate_;
  double burst_;
  double credit_ = 0.0;
  std::string name_;
  u64 cycles_ = 0;
  double transferred_ = 0.0;
};

}  // namespace xd::mem
