#include "mem/memory.hpp"

#include <algorithm>

namespace xd::mem {

WordMemory::WordMemory(std::size_t words, std::string name)
    : data_(words, 0), name_(std::move(name)) {}

void WordMemory::check(std::size_t addr) const {
  if (addr >= data_.size()) {
    throw SimError(cat("out-of-bounds access to ", name_, ": addr ", addr, " of ",
                       data_.size(), " words"));
  }
}

u64 WordMemory::read(std::size_t addr) {
  check(addr);
  ++reads_;
  return data_[addr];
}

void WordMemory::write(std::size_t addr, u64 value) {
  check(addr);
  ++writes_;
  data_[addr] = value;
}

void WordMemory::load(std::size_t addr, const std::vector<u64>& data) {
  require(addr + data.size() <= data_.size(),
          cat("load overruns ", name_, ": ", addr, "+", data.size(), " > ",
              data_.size()));
  std::copy(data.begin(), data.end(), data_.begin() + static_cast<long>(addr));
}

std::vector<u64> WordMemory::dump(std::size_t addr, std::size_t count) const {
  require(addr + count <= data_.size(),
          cat("dump overruns ", name_, ": ", addr, "+", count, " > ", data_.size()));
  return {data_.begin() + static_cast<long>(addr),
          data_.begin() + static_cast<long>(addr + count)};
}

void WordMemory::fill(u64 value) { std::fill(data_.begin(), data_.end(), value); }

}  // namespace xd::mem
