#include "mem/channel.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/metrics.hpp"

namespace xd::mem {

Channel::Channel(double words_per_cycle, std::string name, double burst_words)
    : rate_(words_per_cycle),
      // Default burst: one cycle's rate plus a two-word staging FIFO. The +2
      // keeps fractional rates lossless for integer-word consumers and lets
      // designs assemble small atomic groups (e.g. a lane group plus a
      // broadcast word) without banking idle bandwidth indefinitely.
      burst_(burst_words > 0.0 ? burst_words : words_per_cycle + 2.0),
      name_(std::move(name)) {
  require(words_per_cycle > 0.0, cat("channel ", name_, " needs positive rate"));
}

void Channel::throw_oversubscribed(double words) const {
  throw SimError(cat("channel ", name_, " over-subscribed: need ", words,
                     " credits, have ", credit_));
}

double Channel::utilization() const {
  const double offered = rate_ * static_cast<double>(cycles_);
  return offered > 0.0 ? transferred_ / offered : 0.0;
}

double Channel::achieved_bytes_per_s(double clock_hz) const {
  if (cycles_ == 0) return 0.0;
  const double words_per_cycle = transferred_ / static_cast<double>(cycles_);
  return words_per_cycle * static_cast<double>(kWordBytes) * clock_hz;
}

void Channel::publish(telemetry::MetricsRegistry& reg,
                      std::string_view prefix) const {
  reg.counter(cat(prefix, ".words")).add(static_cast<u64>(transferred_));
  reg.counter(cat(prefix, ".cycles")).add(cycles_);
  reg.gauge(cat(prefix, ".rate_words_per_cycle")).set(rate_);
  reg.gauge(cat(prefix, ".utilization")).set(utilization());
}

void Channel::reset_counters() {
  cycles_ = 0;
  transferred_ = 0.0;
  credit_ = 0.0;
}

}  // namespace xd::mem
