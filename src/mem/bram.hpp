// On-chip Block RAM model (Level A of Table 1).
//
// BRAM is the fastest, smallest level of the hierarchy: the XC2VP50 carries
// ~4 Mb (65536 64-bit words). Designs allocate named regions out of it —
// x storage for GEMV, the 2 m^2 C'/B stores of the GEMM array, the 2 alpha^2
// reduction buffers — and a design that does not fit simply cannot be built
// (the paper's m = 128 choice for Fig 9 and n <= 2048 for GEMV come from
// exactly this constraint). BramBudget tracks allocations against a device's
// capacity and renders a floorplan-style report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/util.hpp"
#include "machine/device.hpp"

namespace xd::mem {

class BramBudget {
 public:
  explicit BramBudget(u64 capacity_words, std::string owner = "fpga");
  /// Budget for a device's full BRAM capacity.
  explicit BramBudget(const machine::FpgaDevice& dev)
      : BramBudget(dev.bram_words(), dev.name) {}

  /// Reserve `words` under `name`; throws ConfigError when over capacity.
  void allocate(const std::string& name, u64 words);
  /// Reserve only if it fits; returns success.
  bool try_allocate(const std::string& name, u64 words);
  void release(const std::string& name);

  u64 capacity_words() const { return capacity_; }
  u64 used_words() const { return used_; }
  u64 free_words() const { return capacity_ - used_; }
  bool fits(u64 words) const { return words <= free_words(); }

  /// Largest square block edge m such that 2 m^2 words fit in the free
  /// space (the GEMM array's storage need) — how Fig 9's m is chosen.
  u64 max_square_block_edge() const;

  std::string report() const;

 private:
  struct Region {
    std::string name;
    u64 words;
  };
  u64 capacity_;
  u64 used_ = 0;
  std::string owner_;
  std::vector<Region> regions_;
};

}  // namespace xd::mem
