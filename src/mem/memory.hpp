// Word-addressable memory with traffic accounting.
//
// All data in the simulated designs moves as 64-bit words (the paper's
// designs are 64-bit floating-point throughout; XD1 SRAM banks are 64-bit
// wide plus parity). WordMemory is the storage model shared by BRAM, SRAM
// and DRAM levels; the levels differ in capacity and in the port/bandwidth
// models wrapped around them (sram_bank.hpp, dram.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/util.hpp"

namespace xd::mem {

class WordMemory {
 public:
  /// `words` is the capacity; `name` appears in error messages and reports.
  WordMemory(std::size_t words, std::string name);

  u64 read(std::size_t addr);
  void write(std::size_t addr, u64 value);

  /// Bulk host-side initialization/readout (not counted as device traffic —
  /// models the host writing the memory before the FPGA design starts).
  void load(std::size_t addr, const std::vector<u64>& data);
  std::vector<u64> dump(std::size_t addr, std::size_t count) const;
  void fill(u64 value);

  std::size_t words() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * kWordBytes; }
  const std::string& name() const { return name_; }

  u64 words_read() const { return reads_; }
  u64 words_written() const { return writes_; }
  u64 total_traffic_words() const { return reads_ + writes_; }
  void reset_counters() { reads_ = writes_ = 0; }

 private:
  void check(std::size_t addr) const;

  std::vector<u64> data_;
  std::string name_;
  u64 reads_ = 0;
  u64 writes_ = 0;
};

}  // namespace xd::mem
