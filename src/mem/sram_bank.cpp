#include "mem/sram_bank.hpp"

#include "telemetry/metrics.hpp"

namespace xd::mem {

SramBank::SramBank(std::size_t words, std::string name)
    : mem_(words, std::move(name)) {}

void SramBank::tick() {
  ++cycles_;
  read_used_ = false;
  write_used_ = false;
}

u64 SramBank::read(std::size_t addr) {
  if (read_used_) {
    throw SimError(cat("SRAM bank ", mem_.name(), ": two reads in one cycle"));
  }
  read_used_ = true;
  ++reads_;
  return mem_.read(addr);
}

void SramBank::write(std::size_t addr, u64 value) {
  if (write_used_) {
    throw SimError(cat("SRAM bank ", mem_.name(), ": two writes in one cycle"));
  }
  write_used_ = true;
  ++writes_;
  mem_.write(addr, value);
}

void SramBank::publish(telemetry::MetricsRegistry& reg,
                       std::string_view prefix) const {
  reg.counter(cat(prefix, ".reads")).add(reads_);
  reg.counter(cat(prefix, ".writes")).add(writes_);
  reg.counter(cat(prefix, ".cycles")).add(cycles_);
  reg.gauge(cat(prefix, ".port_utilization"))
      .set(cycles_ ? static_cast<double>(reads_ + writes_) /
                         (2.0 * static_cast<double>(cycles_))
                   : 0.0);
}

double SramBank::achieved_bytes_per_s(double clock_hz) const {
  if (cycles_ == 0) return 0.0;
  const double words_per_cycle =
      static_cast<double>(reads_ + writes_) / static_cast<double>(cycles_);
  return words_per_cycle * kWordBytes * clock_hz;
}

}  // namespace xd::mem
