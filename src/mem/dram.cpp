#include "mem/dram.hpp"

namespace xd::mem {

Dram::Dram(std::size_t words, double words_per_cycle, std::string name)
    : mem_(words, name + ".array"), link_(words_per_cycle, name + ".link") {}

u64 Dram::read(std::size_t addr) {
  link_.transfer(1.0);
  return mem_.read(addr);
}

void Dram::write(std::size_t addr, u64 value) {
  link_.transfer(1.0);
  mem_.write(addr, value);
}

}  // namespace xd::mem
