// QDR-II SRAM bank model (XD1 Level B memory).
//
// Each FPGA in the XD1 is attached to four QDR-II SRAM banks of 4 MB each
// (16 MB total). QDR ("quad data rate") SRAM has *independent* read and write
// ports, each able to move one 64-bit word (plus parity) per design clock.
// The paper's GEMV design reads one word from each of the four banks every
// cycle (5.9 GB/s at 164 MHz); the GEMM design streams C' through one read
// and one write port every cycle (2.1 GB/s at 130 MHz).
#pragma once

#include <string>
#include <string_view>

#include "mem/memory.hpp"

namespace xd::telemetry {
class MetricsRegistry;
}

namespace xd::mem {

class SramBank {
 public:
  SramBank(std::size_t words, std::string name);

  /// Advance one clock cycle (reopens the read and write ports).
  void tick();

  bool can_read() const { return !read_used_; }
  bool can_write() const { return !write_used_; }

  /// One read per cycle; throws SimError on a port conflict.
  u64 read(std::size_t addr);
  /// One write per cycle; throws SimError on a port conflict.
  void write(std::size_t addr, u64 value);

  WordMemory& storage() { return mem_; }
  const WordMemory& storage() const { return mem_; }

  u64 cycles() const { return cycles_; }
  u64 reads() const { return reads_; }
  u64 writes() const { return writes_; }

  /// Snapshot this bank's counters into `reg` under `<prefix>.`: reads,
  /// writes, cycles (counters) and port utilization (gauge, both ports).
  void publish(telemetry::MetricsRegistry& reg, std::string_view prefix) const;

  /// Achieved bandwidth (both ports) in bytes/s at the given design clock.
  double achieved_bytes_per_s(double clock_hz) const;
  /// Peak bandwidth (both ports busy every cycle).
  static double peak_bytes_per_s(double clock_hz) {
    return 2.0 * kWordBytes * clock_hz;
  }

 private:
  WordMemory mem_;
  bool read_used_ = false;
  bool write_used_ = false;
  u64 cycles_ = 0;
  u64 reads_ = 0;
  u64 writes_ = 0;
};

}  // namespace xd::mem
