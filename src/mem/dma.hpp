// DMA engine for staging data between memory levels.
//
// Table 4's GEMV experiment spends 6.4 of its 8.0 ms moving matrix A from
// DRAM into the four SRAM banks before (and results back after) the actual
// computation; this engine reproduces that staging phase. A transfer moves a
// contiguous word range from one WordMemory to another, throttled by a
// Channel (the DRAM link) and an optional per-cycle word cap (e.g. the
// destination's aggregate write-port count).
#pragma once

#include <cstddef>
#include <string>

#include "mem/channel.hpp"
#include "mem/memory.hpp"

namespace xd::mem {

class DmaEngine {
 public:
  /// `link` is the bottleneck channel the data crosses; `port_cap` limits
  /// words per cycle regardless of link credit (0 = unlimited).
  DmaEngine(Channel& link, unsigned port_cap = 0)
      : link_(link), port_cap_(port_cap) {}

  /// Begin a transfer of `words` from src[src_addr...] to dst[dst_addr...].
  /// Only one transfer may be active at a time. Resets the per-transfer
  /// counters (words_moved, busy_cycles), so they always describe the
  /// current transfer. Overlapping ranges within the same memory get
  /// memmove semantics: when the destination starts inside the source
  /// range, words are copied back-to-front so no source word is clobbered
  /// before it is read.
  void start(WordMemory& src, std::size_t src_addr, WordMemory& dst,
             std::size_t dst_addr, std::size_t words);

  /// Advance one cycle; moves as many words as credit/ports allow.
  /// The caller is responsible for ticking the underlying channel first.
  void tick();

  bool active() const { return remaining_ > 0; }
  std::size_t remaining() const { return remaining_; }
  u64 busy_cycles() const { return busy_cycles_; }
  u64 words_moved() const { return moved_; }

 private:
  Channel& link_;
  unsigned port_cap_;
  WordMemory* src_ = nullptr;
  WordMemory* dst_ = nullptr;
  std::size_t src_addr_ = 0;
  std::size_t dst_addr_ = 0;
  std::size_t remaining_ = 0;
  bool reverse_ = false;  ///< copy back-to-front (overlap within one memory)
  u64 busy_cycles_ = 0;
  u64 moved_ = 0;
};

}  // namespace xd::mem
