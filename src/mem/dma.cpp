#include "mem/dma.hpp"

namespace xd::mem {

void DmaEngine::start(WordMemory& src, std::size_t src_addr, WordMemory& dst,
                      std::size_t dst_addr, std::size_t words) {
  if (active()) throw SimError("DMA engine already has an active transfer");
  src_ = &src;
  dst_ = &dst;
  remaining_ = words;
  // Per-transfer counters: a reused engine must not report the previous
  // transfer's words/cycles on top of this one's.
  moved_ = 0;
  busy_cycles_ = 0;
  // Forward word-by-word copy corrupts a same-memory transfer whose
  // destination starts inside the source range (each written word is read
  // again a few iterations later). Copy back-to-front in that case.
  reverse_ = &src == &dst && dst_addr > src_addr && dst_addr < src_addr + words;
  if (reverse_ && words > 0) {
    src_addr_ = src_addr + words - 1;
    dst_addr_ = dst_addr + words - 1;
  } else {
    src_addr_ = src_addr;
    dst_addr_ = dst_addr;
  }
}

void DmaEngine::tick() {
  if (!active()) return;
  ++busy_cycles_;
  std::size_t budget = remaining_;
  if (port_cap_ > 0) budget = std::min<std::size_t>(budget, port_cap_);
  std::size_t moved = 0;
  while (moved < budget && link_.can_transfer(1.0)) {
    link_.transfer(1.0);
    if (reverse_) {
      dst_->write(dst_addr_--, src_->read(src_addr_--));
    } else {
      dst_->write(dst_addr_++, src_->read(src_addr_++));
    }
    ++moved;
  }
  remaining_ -= moved;
  moved_ += moved;
}

}  // namespace xd::mem
