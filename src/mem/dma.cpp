#include "mem/dma.hpp"

namespace xd::mem {

void DmaEngine::start(WordMemory& src, std::size_t src_addr, WordMemory& dst,
                      std::size_t dst_addr, std::size_t words) {
  if (active()) throw SimError("DMA engine already has an active transfer");
  src_ = &src;
  dst_ = &dst;
  src_addr_ = src_addr;
  dst_addr_ = dst_addr;
  remaining_ = words;
}

void DmaEngine::tick() {
  if (!active()) return;
  ++busy_cycles_;
  std::size_t budget = remaining_;
  if (port_cap_ > 0) budget = std::min<std::size_t>(budget, port_cap_);
  std::size_t moved = 0;
  while (moved < budget && link_.can_transfer(1.0)) {
    link_.transfer(1.0);
    dst_->write(dst_addr_++, src_->read(src_addr_++));
    ++moved;
  }
  remaining_ -= moved;
  moved_ += moved;
}

}  // namespace xd::mem
