// Memory-hierarchy descriptors (Table 1 of the paper).
//
// Each compute node exposes three levels to the FPGA design:
//   Level A: on-chip BRAM         (hundreds of KB, >100 GB/s aggregate)
//   Level B: on-board SRAM        (tens of MB, a few to ~13 GB/s)
//   Level C: processor DRAM       (GBs, <5 GB/s over the system interconnect)
// The constants below are the paper's Table 1 rows for the SRC MAPstation
// and the Cray XD1, used by bench_table1_memory and by machine/node to size
// default systems.
#pragma once

#include <array>
#include <string>

#include "common/util.hpp"

namespace xd::mem {

enum class Level { A, B, C };

struct LevelSpec {
  Level level;
  std::string name;
  double bytes;            ///< capacity available to one FPGA
  double bytes_per_s;      ///< peak bandwidth to the FPGA design
};

struct HierarchySpec {
  std::string system;
  std::array<LevelSpec, 3> levels;

  const LevelSpec& level(Level l) const {
    return levels[static_cast<std::size_t>(l)];
  }
};

/// SRC MAPstation column of Table 1.
inline HierarchySpec src_mapstation() {
  return HierarchySpec{
      "SRC MAPstation",
      {LevelSpec{Level::A, "BRAM", 648 * kKiB, 260 * kGB},
       LevelSpec{Level::B, "SRAM", 24 * kMiB, 4.8 * kGB},
       LevelSpec{Level::C, "DRAM", 8 * kGiB, 1.4 * kGB}}};
}

/// Cray XD1 column of Table 1.
inline HierarchySpec cray_xd1() {
  return HierarchySpec{
      "Cray XD1",
      {LevelSpec{Level::A, "BRAM", 522 * kKiB, 209 * kGB},
       LevelSpec{Level::B, "SRAM", 16 * kMiB, 12.8 * kGB},
       LevelSpec{Level::C, "DRAM", 8 * kGiB, 3.2 * kGB}}};
}

}  // namespace xd::mem
