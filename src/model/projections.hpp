// Projection engine for the paper's Sec 6.4 figures:
//   Figure 9  — area & clock of the GEMM design vs number of PEs (XC2VP50),
//   Figure 11 — projected chassis GFLOPS vs PE area x clock (XC2VP50),
//   Figure 12 — the same on XC2VP100,
//   Sec 6.4.2 — 12-chassis installation (148.3 GFLOPS projection).
//
// The paper computes these from the per-component constants of Table 2 /
// Fig 9 and simple composition formulas; machine::AreaModel carries the
// constants, and this module evaluates the formulas (including the 25%
// routing deduction the paper applies to chassis projections).
#pragma once

#include <cstddef>
#include <vector>

#include "machine/area.hpp"
#include "machine/device.hpp"
#include "machine/system.hpp"

namespace xd::model {

/// One point of Figure 9.
struct Fig9Point {
  unsigned k = 0;          ///< PEs
  unsigned slices = 0;
  double clock_mhz = 0.0;
  double gflops = 0.0;     ///< sustained 2 * k * clock
};

/// Figure 9 sweep: k = 1 .. max PEs on the device (10 on XC2VP50).
std::vector<Fig9Point> figure9(const machine::AreaModel& area,
                               const machine::FpgaDevice& dev);

/// One cell of Figures 11 / 12.
struct ChassisProjection {
  unsigned pe_slices = 0;
  double pe_clock_mhz = 0.0;
  unsigned pes_per_fpga = 0;
  double gflops = 0.0;                  ///< chassis sustained (6 FPGAs, -25%)
  double sram_bytes_per_s = 0.0;        ///< required, per FPGA
  double dram_bytes_per_s = 0.0;        ///< required, at FPGA_0
};

/// Project one chassis configuration (Sec 6.4.1). `fpgas` is 6 for an XD1
/// chassis; `b` is the SRAM panel edge (2048 in the paper). Both are
/// explicit — a zero for either would divide the bandwidth formulas by zero
/// — and are validated with a ConfigError.
ChassisProjection project_chassis(const machine::AreaModel& area,
                                  const machine::FpgaDevice& dev,
                                  unsigned pe_slices, double pe_clock_mhz,
                                  unsigned fpgas, std::size_t b);

/// Full Figure 11 / 12 grid: PE area 1600..2000 step 100, clock 160..200
/// step 10, on the given device. `fpgas` and `b` are passed through to
/// project_chassis explicitly (the paper's grid uses 6 and 2048) and
/// validated the same way — rejecting fpgas == 0 / b == 0 instead of
/// producing NaN or zero-division projections.
std::vector<ChassisProjection> figure11_grid(const machine::AreaModel& area,
                                             const machine::FpgaDevice& dev,
                                             unsigned fpgas, std::size_t b);

/// Multi-chassis projection (Sec 6.4.2).
struct SystemProjection {
  unsigned chassis = 0;
  unsigned total_fpgas = 0;
  double gflops = 0.0;
  double sram_bytes_per_s = 0.0;        ///< required, per FPGA
  double dram_bytes_per_s = 0.0;        ///< required, at FPGA_0
  double interchassis_bytes_per_s = 0.0;
  bool bandwidth_met = false;           ///< against XD1's available bandwidth
};

/// Project the installation described by `sys` running the measured k-PE
/// design at `per_fpga_gflops` (the paper uses the measured 2.06 GFLOPS).
/// FPGA count and the inter-chassis bandwidth bound are read from the
/// machine configuration — chassis_count * ChassisConfig::nodes and
/// SystemConfig::interchassis_bytes_per_s — so this projection can never
/// disagree with the executable machine::System built from the same config
/// (total_fpgas always equals System::total_fpgas()).
SystemProjection project_system(const machine::SystemConfig& sys, unsigned k,
                                std::size_t b, double clock_mhz,
                                double per_fpga_gflops);

/// Convenience arity for the paper's default installation: `chassis` XD1
/// chassis of 6 FPGAs each with 4 GB/s between chassis. Forwards to the
/// SystemConfig overload with an otherwise-default configuration.
SystemProjection project_system(unsigned chassis, unsigned k, std::size_t b,
                                double clock_mhz, double per_fpga_gflops);

}  // namespace xd::model
