#include "model/perf_model.hpp"

#include <cmath>

namespace xd::model {

double mm_device_peak_flops(const machine::FpgaDevice& dev,
                            const machine::FpCoreSpec& cores) {
  const unsigned pair_slices = cores.adder_slices + cores.multiplier_slices;
  const unsigned pairs = dev.slices / pair_slices;
  return 2.0 * static_cast<double>(pairs) * cores.clock_mhz * 1e6;
}

u64 dot_model_cycles(std::size_t n, unsigned k, unsigned adder_stages,
                     unsigned mult_stages) {
  // Stream n/k groups, then drain: multiplier, adder tree (lg k levels), and
  // the reduction of the final alpha partials (~lg(alpha) passes of alpha).
  const u64 stream = ceil_div(n, k);
  const u64 tree = static_cast<u64>(k > 1 ? log2_ceil(k) : 0) * adder_stages;
  const u64 reduction_tail =
      static_cast<u64>(log2_ceil(adder_stages) + 1) * adder_stages;
  return stream + mult_stages + tree + reduction_tail;
}

u64 gemv_model_cycles(std::size_t rows, std::size_t cols, unsigned k) {
  return ceil_div(static_cast<u64>(rows) * cols, k);
}

u64 mm_model_cycles(std::size_t n, unsigned k) {
  return static_cast<u64>(n) * n * n / k;
}

u64 mm_hier_model_cycles(std::size_t n, unsigned k, unsigned l) {
  return static_cast<u64>(n) * n * n / (static_cast<u64>(k) * l);
}

GemmDesignPoint gemm_zhuo04(std::size_t n) {
  const double dn = static_cast<double>(n);
  // [30]: n PEs, Theta(n^2) storage, Theta(n^2) effective latency; the whole
  // operand set streams once (1 word/cycle per matrix).
  return GemmDesignPoint{"Zhuo04 [30] (n PEs)", dn, 2.0 * dn * dn, dn * dn, 2.0};
}

GemmDesignPoint gemm_dou05(std::size_t n, unsigned j, unsigned s) {
  const double dn = static_cast<double>(n);
  const double ds = static_cast<double>(s);
  // [8]: j pipelined MACs, S^2-word local block stores, latency ~ n^3/j,
  // bandwidth ~ 3/(2 S) words/cycle (their Eq. for block reuse).
  return GemmDesignPoint{cat("Dou05 [8] (", j, " MACs, S=", s, ")"),
                         static_cast<double>(j), 2.0 * ds * ds,
                         dn * dn * dn / static_cast<double>(j), 1.5 / ds};
}

GemmDesignPoint gemm_sc05(std::size_t n, unsigned k, unsigned m) {
  const double dn = static_cast<double>(n);
  return GemmDesignPoint{cat("this paper (k=", k, ", m=", m, ")"),
                         static_cast<double>(k),
                         2.0 * static_cast<double>(m) * m, dn * dn * dn / k,
                         mm_required_words_per_cycle(k, m)};
}

GemmDesignPoint gemm_naive_multi(std::size_t n, unsigned k, unsigned l,
                                 unsigned m) {
  const double dn = static_cast<double>(n);
  const double kl = static_cast<double>(k) * l;
  return GemmDesignPoint{cat("naive array x", l, " FPGAs (K=", k * l, ")"),
                         kl, 2.0 * static_cast<double>(m) * m,
                         dn * dn * dn / kl,
                         3.0 * kl / static_cast<double>(m)};
}

namespace {

u64 stage_cycles(double words, double wpc) {
  return words > 0.0 ? static_cast<u64>(std::ceil(words / wpc)) : 0;
}

}  // namespace

u64 unfused_chain_staging_cycles(const std::vector<ChainStage>& stages) {
  u64 total = 0;
  for (const auto& s : stages)
    total += stage_cycles(s.fresh_in_words + s.reused_in_words +
                              s.writeback_words,
                          s.wpc);
  return total;
}

u64 fused_chain_staging_cycles(const std::vector<ChainStage>& stages) {
  u64 total = 0;
  for (const auto& s : stages)
    total += stage_cycles(s.fresh_in_words +
                              (s.keep ? s.writeback_words : 0.0),
                          s.wpc);
  return total;
}

std::vector<ChainStage> cg_step_chain(std::size_t n, double wpc_gemv,
                                      double wpc_dot) {
  const double dn = static_cast<double>(n);
  std::vector<ChainStage> chain(2);
  // Stage 0: GEMV streams A (n^2 fresh words) and writes ap back — keep:
  // the host consumes ap to update the residual.
  chain[0] = ChainStage{dn * dn, 0.0, dn, true, wpc_gemv};
  // Stage 1: dot(p, ap). Both operands are reused on-chip when fused: ap
  // arrives over the forwarding bank, p is chain-resident from the GEMV's
  // x. A dot produces one scalar; no writeback is modeled (the single-op
  // dot never stages its result either).
  chain[1] = ChainStage{0.0, 2.0 * dn, 0.0, true, wpc_dot};
  return chain;
}

std::vector<ChainStage> jacobi_sweep_chain(std::size_t n, std::size_t systems,
                                           double wpc) {
  const double dn = static_cast<double>(n);
  std::vector<ChainStage> chain(systems);
  for (std::size_t s = 0; s < systems; ++s) {
    // Every system streams the shared R once per sweep when unfused; fused,
    // only the first stage stages it (the rest reuse the resident copy).
    // Each keeps its own y writeback.
    chain[s] = s == 0 ? ChainStage{dn * dn, 0.0, dn, true, wpc}
                      : ChainStage{0.0, dn * dn, dn, true, wpc};
  }
  return chain;
}

GemmDesignPoint gemm_hier_multi(std::size_t n, unsigned k, unsigned l,
                                unsigned m, std::size_t b) {
  const double dn = static_cast<double>(n);
  const double kl = static_cast<double>(k) * l;
  return GemmDesignPoint{
      cat("hierarchical x", l, " FPGAs (b=", b, ")"), kl,
      2.0 * static_cast<double>(m) * m +
          2.0 * static_cast<double>(b) * b / l,  // on-chip + SRAM panel share
      dn * dn * dn / kl, mm_hier_dram_words_per_cycle(k, l, b)};
}

}  // namespace xd::model
