#include "model/perf_model.hpp"

#include <cmath>

namespace xd::model {

double mm_device_peak_flops(const machine::FpgaDevice& dev,
                            const machine::FpCoreSpec& cores) {
  const unsigned pair_slices = cores.adder_slices + cores.multiplier_slices;
  const unsigned pairs = dev.slices / pair_slices;
  return 2.0 * static_cast<double>(pairs) * cores.clock_mhz * 1e6;
}

u64 dot_model_cycles(std::size_t n, unsigned k, unsigned adder_stages,
                     unsigned mult_stages) {
  // Stream n/k groups, then drain: multiplier, adder tree (lg k levels), and
  // the reduction of the final alpha partials (~lg(alpha) passes of alpha).
  const u64 stream = ceil_div(n, k);
  const u64 tree = static_cast<u64>(k > 1 ? log2_ceil(k) : 0) * adder_stages;
  const u64 reduction_tail =
      static_cast<u64>(log2_ceil(adder_stages) + 1) * adder_stages;
  return stream + mult_stages + tree + reduction_tail;
}

u64 gemv_model_cycles(std::size_t rows, std::size_t cols, unsigned k) {
  return ceil_div(static_cast<u64>(rows) * cols, k);
}

u64 mm_model_cycles(std::size_t n, unsigned k) {
  return static_cast<u64>(n) * n * n / k;
}

u64 mm_hier_model_cycles(std::size_t n, unsigned k, unsigned l) {
  return static_cast<u64>(n) * n * n / (static_cast<u64>(k) * l);
}

GemmDesignPoint gemm_zhuo04(std::size_t n) {
  const double dn = static_cast<double>(n);
  // [30]: n PEs, Theta(n^2) storage, Theta(n^2) effective latency; the whole
  // operand set streams once (1 word/cycle per matrix).
  return GemmDesignPoint{"Zhuo04 [30] (n PEs)", dn, 2.0 * dn * dn, dn * dn, 2.0};
}

GemmDesignPoint gemm_dou05(std::size_t n, unsigned j, unsigned s) {
  const double dn = static_cast<double>(n);
  const double ds = static_cast<double>(s);
  // [8]: j pipelined MACs, S^2-word local block stores, latency ~ n^3/j,
  // bandwidth ~ 3/(2 S) words/cycle (their Eq. for block reuse).
  return GemmDesignPoint{cat("Dou05 [8] (", j, " MACs, S=", s, ")"),
                         static_cast<double>(j), 2.0 * ds * ds,
                         dn * dn * dn / static_cast<double>(j), 1.5 / ds};
}

GemmDesignPoint gemm_sc05(std::size_t n, unsigned k, unsigned m) {
  const double dn = static_cast<double>(n);
  return GemmDesignPoint{cat("this paper (k=", k, ", m=", m, ")"),
                         static_cast<double>(k),
                         2.0 * static_cast<double>(m) * m, dn * dn * dn / k,
                         mm_required_words_per_cycle(k, m)};
}

GemmDesignPoint gemm_naive_multi(std::size_t n, unsigned k, unsigned l,
                                 unsigned m) {
  const double dn = static_cast<double>(n);
  const double kl = static_cast<double>(k) * l;
  return GemmDesignPoint{cat("naive array x", l, " FPGAs (K=", k * l, ")"),
                         kl, 2.0 * static_cast<double>(m) * m,
                         dn * dn * dn / kl,
                         3.0 * kl / static_cast<double>(m)};
}

namespace {

u64 stage_cycles(double words, double wpc) {
  return words > 0.0 ? static_cast<u64>(std::ceil(words / wpc)) : 0;
}

}  // namespace

u64 unfused_chain_staging_cycles(const std::vector<ChainStage>& stages) {
  u64 total = 0;
  for (const auto& s : stages)
    total += stage_cycles(s.fresh_in_words + s.reused_in_words +
                              s.writeback_words,
                          s.wpc);
  return total;
}

u64 fused_chain_staging_cycles(const std::vector<ChainStage>& stages) {
  u64 total = 0;
  for (const auto& s : stages)
    total += stage_cycles(s.fresh_in_words +
                              (s.keep ? s.writeback_words : 0.0),
                          s.wpc);
  return total;
}

std::vector<ChainStage> cg_step_chain(std::size_t n, double wpc_gemv,
                                      double wpc_dot) {
  const double dn = static_cast<double>(n);
  std::vector<ChainStage> chain(2);
  // Stage 0: GEMV streams A (n^2 fresh words) and writes ap back — keep:
  // the host consumes ap to update the residual.
  chain[0] = ChainStage{dn * dn, 0.0, dn, true, wpc_gemv};
  // Stage 1: dot(p, ap). Both operands are reused on-chip when fused: ap
  // arrives over the forwarding bank, p is chain-resident from the GEMV's
  // x. A dot produces one scalar; no writeback is modeled (the single-op
  // dot never stages its result either).
  chain[1] = ChainStage{0.0, 2.0 * dn, 0.0, true, wpc_dot};
  return chain;
}

std::vector<ChainStage> jacobi_sweep_chain(std::size_t n, std::size_t systems,
                                           double wpc) {
  const double dn = static_cast<double>(n);
  std::vector<ChainStage> chain(systems);
  for (std::size_t s = 0; s < systems; ++s) {
    // Every system streams the shared R once per sweep when unfused; fused,
    // only the first stage stages it (the rest reuse the resident copy).
    // Each keeps its own y writeback.
    chain[s] = s == 0 ? ChainStage{dn * dn, 0.0, dn, true, wpc}
                      : ChainStage{0.0, dn * dn, dn, true, wpc};
  }
  return chain;
}

u64 shard_leg_cycles(double words, double words_per_cycle) {
  return stage_cycles(words, words_per_cycle);
}

u64 mm_hier_panel_model_cycles(std::size_t rows, std::size_t n, unsigned k,
                               unsigned l) {
  // rows * n^2 / (k l) streaming cycles plus the k*l array fill/drain skew —
  // the same integer arithmetic MmHierEngine::fill_model uses; rows == n
  // reduces to mm_hier_model_cycles(n, k, l) + k*l.
  return static_cast<u64>(rows) * n * n / (static_cast<u64>(k) * l) +
         static_cast<u64>(k) * l;
}

double mm_hier_panel_dram_words(std::size_t rows, std::size_t n,
                                std::size_t b) {
  const double dr = static_cast<double>(rows);
  const double dn = static_cast<double>(n);
  return 2.0 * dr * dn * dn / static_cast<double>(b) + dr * dn;
}

u64 mm_hier_panel_cycles(std::size_t rows, std::size_t n, unsigned k,
                         unsigned l, std::size_t b, double engine_wpc) {
  const u64 compute = mm_hier_panel_model_cycles(rows, n, k, l);
  const u64 io = stage_cycles(mm_hier_panel_dram_words(rows, n, b), engine_wpc);
  return std::max(compute, io);
}

u64 shard_gemm_model_cycles(std::size_t n, const ShardGemmModel& m) {
  require(m.l >= 1, "shard_gemm_model_cycles: l must be >= 1");
  require(m.nodes_per_chassis >= 1,
          "shard_gemm_model_cycles: nodes_per_chassis must be >= 1");
  if (m.l == 1)
    return mm_hier_panel_cycles(n, n, m.k, m.engine_l, m.b, m.engine_wpc);

  // Channel occupancy along the chain, keyed per hop p (positions p -> p+1):
  // 3p = forward intra-chassis link, 3p+1 = backward intra-chassis link,
  // 3p+2 = the inter-chassis link, which both directions share. One map
  // across scatter and gather — exactly the scheduler's busy bookkeeping.
  std::vector<u64> busy(3 * static_cast<std::size_t>(m.l - 1), 0);
  auto leg = [&](unsigned p, bool forward, double words, u64 ready) {
    const bool cross = (p + 1) % m.nodes_per_chassis == 0;
    const std::size_t key = 3 * static_cast<std::size_t>(p) +
                            (cross ? 2 : (forward ? 0 : 1));
    const double wpc = cross ? m.xlink_wpc : (forward ? m.fwd_wpc : m.bwd_wpc);
    const u64 end =
        std::max(busy[key], ready) + shard_leg_cycles(words, wpc);
    busy[key] = end;
    return end;
  };

  const double dn = static_cast<double>(n);
  std::vector<u64> done(m.l, 0);
  // Scatter, shards in ascending order: shard i receives its A row panel
  // plus the whole B operand, store-and-forward over hops 0..i-1.
  for (unsigned i = 0; i < m.l; ++i) {
    const double words =
        static_cast<double>(shard_rows(n, m.l, i)) * dn + dn * dn;
    u64 t = 0;
    for (unsigned p = 0; p < i; ++p) t = leg(p, /*forward=*/true, words, t);
    done[i] = t + mm_hier_panel_cycles(shard_rows(n, m.l, i), n, m.k,
                                       m.engine_l, m.b, m.engine_wpc);
  }
  // Gather, ascending order again: each C row panel walks back to node 0.
  u64 total = done[0];
  for (unsigned i = 1; i < m.l; ++i) {
    const double words = static_cast<double>(shard_rows(n, m.l, i)) * dn;
    u64 t = done[i];
    for (unsigned p = i; p-- > 0;) t = leg(p, /*forward=*/false, words, t);
    total = std::max(total, t);
  }
  return total;
}

GemmDesignPoint gemm_hier_multi(std::size_t n, unsigned k, unsigned l,
                                unsigned m, std::size_t b) {
  const double dn = static_cast<double>(n);
  const double kl = static_cast<double>(k) * l;
  return GemmDesignPoint{
      cat("hierarchical x", l, " FPGAs (b=", b, ")"), kl,
      2.0 * static_cast<double>(m) * m +
          2.0 * static_cast<double>(b) * b / l,  // on-chip + SRAM panel share
      dn * dn * dn / kl, mm_hier_dram_words_per_cycle(k, l, b)};
}

}  // namespace xd::model
