// Analytical performance model (Secs 4.4, 5.1, 5.2, 6.3).
//
// The paper evaluates its designs with closed-form peak/latency/bandwidth
// formulas and compares measured results against them; this module implements
// those formulas so benches can print both columns and tests can check the
// cycle-accurate engines against the model.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "common/util.hpp"
#include "machine/area.hpp"
#include "machine/device.hpp"

namespace xd::model {

// ---- Level 1 / 2: I/O-bound peaks (Sec 4.4) -------------------------------

/// Dot product moves 2n words for 2n flops: peak FLOPS equals the memory
/// bandwidth in words/s.
inline double dot_peak_flops(double mem_bytes_per_s) {
  return mem_bytes_per_s / kWordBytes;
}

/// GEMV moves ~n^2 words for 2n^2 flops: peak FLOPS is twice the bandwidth
/// in words/s.
inline double gemv_peak_flops(double mem_bytes_per_s) {
  return 2.0 * mem_bytes_per_s / kWordBytes;
}

// ---- Level 3: compute-bound peak (Sec 6.3) --------------------------------

/// Device peak: 2 x (max adder/multiplier pairs that fit) x unit clock.
/// XC2VP50 with the paper's cores: 2 * 13 * 170 MHz = 4.42 GFLOPS.
double mm_device_peak_flops(const machine::FpgaDevice& dev,
                            const machine::FpCoreSpec& cores);

// ---- Latency models --------------------------------------------------------

/// Dot: n elements through k lanes, plus pipeline and reduction tails.
u64 dot_model_cycles(std::size_t n, unsigned k, unsigned adder_stages,
                     unsigned mult_stages);

/// GEMV (either architecture): n rows x n cols through k lanes.
u64 gemv_model_cycles(std::size_t rows, std::size_t cols, unsigned k);

/// GEMM linear array: n^3 / k effective cycles (Sec 5.1).
u64 mm_model_cycles(std::size_t n, unsigned k);

/// GEMM hierarchical: n^3 / (k l) effective cycles (Sec 5.2).
u64 mm_hier_model_cycles(std::size_t n, unsigned k, unsigned l);

// ---- Bandwidth requirements -------------------------------------------------

/// GEMM array external-memory requirement: 3k/m words/cycle (Sec 5.1).
inline double mm_required_words_per_cycle(unsigned k, unsigned m) {
  return 3.0 * static_cast<double>(k) / static_cast<double>(m);
}

/// Hierarchical GEMM DRAM requirement: 3 k l / b words/cycle (Sec 5.2); the
/// FPGA-to-FPGA links carry the same stream.
inline double mm_hier_dram_words_per_cycle(unsigned k, unsigned l, std::size_t b) {
  return 3.0 * static_cast<double>(k) * static_cast<double>(l) /
         static_cast<double>(b);
}

/// Hierarchical GEMM SRAM requirement per FPGA: C' read + write every cycle
/// plus the C-panel stream (one m x m block in and out every m^2 b /(k l)
/// cycles) when l > 1 (Sec 6.3).
inline double mm_hier_sram_words_per_cycle(unsigned k, unsigned l, std::size_t b) {
  const double cpanel = l > 1 ? 2.0 * static_cast<double>(k) *
                                    static_cast<double>(l) /
                                    static_cast<double>(b)
                              : 2.0 * static_cast<double>(k) /
                                    static_cast<double>(b);
  return 2.0 + cpanel;
}

// ---- Fused-chain staging (op-graph fusion; docs/runtime.md) ----------------
// The host runtime fuses op DAGs into SRAM-resident chains: edge-forwarded
// intermediates and chain-shared operands skip their DRAM staging, and a
// non-kept intermediate skips its writeback. These formulas mirror the plan
// layer's per-node decomposition exactly — one ceil(words / wpc) per stage
// — so model and cycle sim agree to the cycle on staging (the fused-chain
// cross-validation in tests/test_graph_fusion.cpp).

/// One stage of a chain, described by its DRAM staging word budget.
struct ChainStage {
  double fresh_in_words = 0.0;   ///< external inputs staged either way
  double reused_in_words = 0.0;  ///< edge-forwarded / chain-shared inputs
  double writeback_words = 0.0;  ///< result words written back to DRAM
  bool keep = true;              ///< host needs the result in DRAM
  double wpc = 0.0;  ///< staging link words/cycle at this stage's clock
};

/// Per-op execution: every stage pays all of its words.
u64 unfused_chain_staging_cycles(const std::vector<ChainStage>& stages);

/// Fused execution: reused inputs skipped, non-kept writebacks skipped.
/// Assumes the chain fit the SRAM budget (capacity fallback = unfused).
u64 fused_chain_staging_cycles(const std::vector<ChainStage>& stages);

/// The CG-step flagship chain: a Dram GEMV (streams A, writes ap back — the
/// host updates r with it) feeding a Dram dot whose other operand p is
/// chain-resident from the GEMV's x. Stage 0 at the GEMV clock, stage 1 at
/// the dot clock.
std::vector<ChainStage> cg_step_chain(std::size_t n, double wpc_gemv,
                                      double wpc_dot);

/// The Jacobi-sweep flagship chain: `systems` Dram GEMVs sharing one R
/// matrix (staged once per sweep when fused), each writing its y back.
std::vector<ChainStage> jacobi_sweep_chain(std::size_t n, std::size_t systems,
                                           double wpc);

// ---- Related-work design points (Sec 2.2) ----------------------------------
// The paper positions its GEMM design against its own precursor [30] and the
// MAC design of Dou et al. [8]; these model structs make the storage/latency/
// bandwidth trade-off table printable (bench_mm_scaling).

struct GemmDesignPoint {
  std::string name;
  double pes = 0;             ///< processing elements / MACs
  double storage_words = 0;   ///< on-chip storage
  double latency_cycles = 0;  ///< effective latency for n x n
  double words_per_cycle = 0; ///< external bandwidth requirement
};

/// Zhuo & Prasanna IPDPS'04 [30]: n PEs, Theta(n^2) storage, Theta(n^2)
/// latency — fast but storage grows with the problem.
GemmDesignPoint gemm_zhuo04(std::size_t n);

/// Dou et al. FPGA'05 [8]: j MAC units with block size s (their S^2-word
/// local stores); latency ~ n^3/j, bandwidth ~ 3/(2s) words/cycle.
GemmDesignPoint gemm_dou05(std::size_t n, unsigned j, unsigned s);

/// This paper (Sec 5.1): k PEs, 2m^2 storage, n^3/k latency, 3k/m words/cycle.
GemmDesignPoint gemm_sc05(std::size_t n, unsigned k, unsigned m);

/// The naive multi-FPGA mapping Sec 5.2 argues AGAINST: the Sec 5.1 linear
/// array simply stretched across l FPGAs (K = k*l PEs, one shared on-chip
/// block of edge m). Latency improves to n^3/(k l) but the DRAM requirement
/// grows as 3 k l / m words/cycle because the SRAM level is unused.
GemmDesignPoint gemm_naive_multi(std::size_t n, unsigned k, unsigned l,
                                 unsigned m);

/// The hierarchical Sec 5.2 design: same n^3/(k l) latency, but the b x b
/// SRAM panels cut the DRAM requirement to 3 k l / b words/cycle.
GemmDesignPoint gemm_hier_multi(std::size_t n, unsigned k, unsigned l,
                                unsigned m, std::size_t b);

// ---- Sharded multi-FPGA execution (host/shard.hpp; docs/sharding.md) -------
// The shard scheduler splits one GEMM/GEMV into l row panels, maps them onto
// the machine::System FPGA chain, and charges explicit transfer legs through
// the chassis/system channels. These formulas replicate that timeline
// closed-form — one ceil(words / wpc) per leg, the same serialized
// store-and-forward order — so the analytic model and the channel-driven
// cycle sim agree exactly (tests/test_shard.cpp pins the equality, the same
// discipline the fused-chain staging formulas above established).

/// Rows shard i (0-based) of l owns under the deterministic row-panel
/// split: base rows/l plus one of the first rows%l remainder rows.
inline std::size_t shard_rows(std::size_t rows, unsigned l, unsigned i) {
  const std::size_t base = rows / l;
  return base + (i < rows % l ? 1 : 0);
}

/// First row of shard i under the same split.
inline std::size_t shard_row0(std::size_t rows, unsigned l, unsigned i) {
  const std::size_t base = rows / l;
  const std::size_t rem = rows % l;
  return static_cast<std::size_t>(i) * base + std::min<std::size_t>(i, rem);
}

/// One store-and-forward transfer leg across one channel:
/// ceil(words / words_per_cycle). The shard scheduler's channel drive loop
/// produces exactly this count (greedy whole-word drain of a credit
/// accumulator whose burst exceeds rate + 1 word of carry).
u64 shard_leg_cycles(double words, double words_per_cycle);

/// The machine and per-shard engine parameters of the sharded-GEMM model.
/// Link rates are in words per engine clock cycle (the scheduler builds its
/// System at the engine clock, so every leg and every engine cycle share
/// one clock domain).
struct ShardGemmModel {
  unsigned l = 1;                 ///< shards (one FPGA of the chain each)
  unsigned nodes_per_chassis = 6;
  double fwd_wpc = 0.0;           ///< intra-chassis forward (scatter) links
  double bwd_wpc = 0.0;           ///< intra-chassis backward (gather) links
  double xlink_wpc = 0.0;         ///< inter-chassis links (shared direction)
  // Per-shard engine: the planned mm-hier row-panel design.
  unsigned k = 8;                 ///< PEs per FPGA
  unsigned engine_l = 1;          ///< FPGAs inside one shard's engine
  std::size_t b = 512;            ///< SRAM panel edge
  double engine_wpc = 0.0;        ///< min(dram, link) words/cycle of the engine
};

/// Compute cycles of a rows x n panel on the hierarchical design: the
/// rows-general form of mm_hier_model_cycles plus the k*l array skew —
/// exactly MmHierEngine's compute model (rows == n reduces to it).
u64 mm_hier_panel_model_cycles(std::size_t rows, std::size_t n, unsigned k,
                               unsigned l);

/// DRAM words of a rows x n panel multiply: each of the rows/b * (n/b)^2
/// panel multiplies reads two b x b panels, and the rows x n C panel leaves
/// once (Sec 5.2 generalized; rows == n gives 2n^3/b + n^2).
double mm_hier_panel_dram_words(std::size_t rows, std::size_t n,
                                std::size_t b);

/// Total engine cycles of the rows x n panel: max(compute, ceil(io)),
/// MmHierEngine::fill_model's throttle.
u64 mm_hier_panel_cycles(std::size_t rows, std::size_t n, unsigned k,
                         unsigned l, std::size_t b, double engine_wpc);

/// Reduced cycle count of the sharded n x n GEMM: the per-shard
/// scatter-ready times (serialized legs over shared hops, shards in
/// ascending index order), plus each shard's engine cycles, plus the
/// serialized gather legs back to node 0 — the exact arithmetic
/// host::ShardScheduler performs while driving the channels.
u64 shard_gemm_model_cycles(std::size_t n, const ShardGemmModel& m);

// ---- I/O complexity (Hong & Kung lower bound, Sec 5) -----------------------

/// Words moved to/from external memory by the blocked GEMM: Theta(n^3 / m)
/// with on-chip storage 2 m^2 (matches the red-blue pebble lower bound).
inline double mm_io_words(std::size_t n, unsigned m) {
  const double dn = static_cast<double>(n);
  return 2.0 * dn * dn * dn / static_cast<double>(m) + dn * dn;
}

}  // namespace xd::model
