#include "model/projections.hpp"

#include "mem/hierarchy.hpp"
#include "model/perf_model.hpp"

namespace xd::model {

std::vector<Fig9Point> figure9(const machine::AreaModel& area,
                               const machine::FpgaDevice& dev) {
  std::vector<Fig9Point> points;
  const unsigned kmax = area.max_mm_pes(dev, /*with_xd1_interface=*/false);
  for (unsigned k = 1; k <= kmax; ++k) {
    const machine::DesignArea d = area.mm_design(k);
    Fig9Point p;
    p.k = k;
    p.slices = d.slices;
    p.clock_mhz = d.clock_mhz;
    // Sustained = 2 flops/PE/cycle x k PEs x clock (Sec 5.3).
    p.gflops = 2.0 * k * d.clock_mhz * 1e6 / 1e9;
    points.push_back(p);
  }
  return points;
}

ChassisProjection project_chassis(const machine::AreaModel& area,
                                  const machine::FpgaDevice& dev,
                                  unsigned pe_slices, double pe_clock_mhz,
                                  unsigned fpgas, std::size_t b) {
  require(fpgas >= 1, "project_chassis: fpgas must be >= 1");
  require(b >= 1, "project_chassis: SRAM panel edge b must be >= 1");
  ChassisProjection p;
  p.pe_slices = pe_slices;
  p.pe_clock_mhz = pe_clock_mhz;
  p.pes_per_fpga = area.projected_pes(dev, pe_slices);
  // Sec 6.4.1: 2 x PEs x clock x 6, minus 25% for routing degradation.
  p.gflops =
      2.0 * p.pes_per_fpga * pe_clock_mhz * 1e6 * fpgas * 0.75 / 1e9;
  // Bandwidth requirements with k = m (the paper's simplification).
  const unsigned k = p.pes_per_fpga;
  const double clock_hz = pe_clock_mhz * 1e6;
  p.sram_bytes_per_s =
      mm_hier_sram_words_per_cycle(k, fpgas, b) * kWordBytes * clock_hz;
  p.dram_bytes_per_s =
      mm_hier_dram_words_per_cycle(k, fpgas, b) * kWordBytes * clock_hz;
  return p;
}

std::vector<ChassisProjection> figure11_grid(const machine::AreaModel& area,
                                             const machine::FpgaDevice& dev,
                                             unsigned fpgas, std::size_t b) {
  require(fpgas >= 1, "figure11_grid: fpgas must be >= 1");
  require(b >= 1, "figure11_grid: SRAM panel edge b must be >= 1");
  std::vector<ChassisProjection> grid;
  for (unsigned slices = 1600; slices <= 2000; slices += 100) {
    for (unsigned clock = 160; clock <= 200; clock += 10) {
      grid.push_back(project_chassis(area, dev, slices, clock, fpgas, b));
    }
  }
  return grid;
}

SystemProjection project_system(const machine::SystemConfig& sys, unsigned k,
                                std::size_t b, double clock_mhz,
                                double per_fpga_gflops) {
  require(sys.chassis_count >= 1, "project_system: needs at least one chassis");
  require(sys.chassis.nodes >= 1, "project_system: needs at least one node");
  require(b >= 1, "project_system: SRAM panel edge b must be >= 1");
  SystemProjection s;
  s.chassis = sys.chassis_count;
  // One source of truth with the executable machine: the same arithmetic
  // machine::System::total_fpgas() performs over its chassis.
  s.total_fpgas = sys.chassis_count * sys.chassis.nodes;
  s.gflops = per_fpga_gflops * s.total_fpgas;
  const double clock_hz = clock_mhz * 1e6;
  const unsigned l = s.total_fpgas;
  s.sram_bytes_per_s = mm_hier_sram_words_per_cycle(k, l, b) * kWordBytes * clock_hz;
  s.dram_bytes_per_s = mm_hier_dram_words_per_cycle(k, l, b) * kWordBytes * clock_hz;
  // Sec 6.4.2: the stream crossing a chassis boundary equals the DRAM stream.
  s.interchassis_bytes_per_s = s.dram_bytes_per_s;

  const mem::HierarchySpec xd1 = mem::cray_xd1();
  s.bandwidth_met = s.sram_bytes_per_s <= xd1.level(mem::Level::B).bytes_per_s &&
                    s.dram_bytes_per_s <= xd1.level(mem::Level::C).bytes_per_s &&
                    s.interchassis_bytes_per_s <= sys.interchassis_bytes_per_s;
  return s;
}

SystemProjection project_system(unsigned chassis, unsigned k, std::size_t b,
                                double clock_mhz, double per_fpga_gflops) {
  machine::SystemConfig sys;
  sys.chassis_count = chassis;
  return project_system(sys, k, b, clock_mhz, per_fpga_gflops);
}

}  // namespace xd::model
