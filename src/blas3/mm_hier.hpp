// Level 3 BLAS on multiple FPGAs (Sec 5.2, Fig 8): the hierarchical GEMM.
//
// l FPGAs form a linear array; each runs the Sec 5.1 MM design (k PEs,
// m x m on-chip blocks) plus one accumulation adder. Matrices are blocked
// twice: b x b panels live in the SRAM attached to the FPGAs (total 2b^2
// words across the array: C' and C panel stores), and m x m sub-blocks move
// through the on-chip stores. Only FPGA_0 touches the DRAM of its host
// processor; A/B blocks are forwarded along the RocketIO links and C results
// flow back the same way.
//
// The element-level datapath timing of the inner MM is validated
// cycle-accurately by MmArrayEngine (blas3/mm_array); this engine composes
// it at block level: numerics are computed with the exact same softfloat
// accumulation order the array produces, and timing uses the design's
// latency/traffic model (n^3/(k l) effective cycles, 2 n^3/b + n^2 DRAM
// words, 2 words/cycle of C' SRAM traffic per FPGA), throttled by the
// configured DRAM/link rates — matching how the paper itself evaluates the
// multi-FPGA configurations (Sec 6.4 computes them from the same formulas).
// A test cross-checks this model against the cycle-accurate array at l = 1.
#pragma once

#include <cstddef>
#include <vector>

#include "blas3/mm_array.hpp"
#include "host/report.hpp"

namespace xd::blas3 {

struct MmHierConfig {
  unsigned l = 1;       ///< FPGAs in the linear array
  unsigned k = 8;       ///< PEs per FPGA
  unsigned m = 8;       ///< on-chip block edge (m % k == 0)
  std::size_t b = 512;  ///< SRAM panel edge (b % (m*l) == 0)
  /// See MmArrayConfig::adder_stages for why the GEMM PE uses a shallower
  /// accumulation adder than the Table 2 core.
  unsigned adder_stages = 8;
  unsigned multiplier_stages = fp::kMultiplierStages;
  double clock_mhz = 130.0;
  double dram_words_per_cycle = 2.0;   ///< FPGA_0's RapidArray link
  double link_words_per_cycle = 2.0;   ///< FPGA-to-FPGA RocketIO
  /// Optional telemetry sink (mem.dram.gemm.* / mem.sram.gemm.* /
  /// fpu.gemm.* / blas3.gemm.* metrics plus "compute" and "staging" phase
  /// spans that tile the modeled total cycles).
  telemetry::Session* telemetry = nullptr;
};

struct MmHierOutcome {
  std::vector<double> c;
  host::PerfReport report;
  double required_dram_words_per_cycle = 0.0;  ///< 3 k l / b (Sec 5.2)
  double required_link_words_per_cycle = 0.0;  ///< equal to the DRAM rate
  double required_sram_words_per_cycle = 0.0;  ///< 2 + C-panel traffic
  double sram_panel_words = 0.0;               ///< 2 b^2 (storage used)
};

class MmHierEngine {
 public:
  explicit MmHierEngine(const MmHierConfig& cfg);

  /// C = A * B for row-major n x n matrices; n must be a multiple of b.
  MmHierOutcome run(const std::vector<double>& a, const std::vector<double>& b,
                    std::size_t n);

  /// C = A * B where A is a rows x n row panel and B is n x n (n a multiple
  /// of b; rows need not be). This is the sub-op shape the shard scheduler
  /// (host/shard.hpp) dispatches: because every C element accumulates its
  /// products in ascending inner index regardless of blocking, a row panel
  /// computed here is bit-identical to the same rows of the full run().
  MmHierOutcome run_panel(const std::vector<double>& a, std::size_t rows,
                          const std::vector<double>& b, std::size_t n);

  /// Effective-latency model: n^3 / (k l) cycles plus the k*l array skew.
  u64 model_cycles(std::size_t n) const;

  /// Timing/traffic model only (no numerics) — lets benches project paper
  /// Sec 6.4 configurations (chassis, 12 chassis) where n is far too large
  /// to multiply.
  MmHierOutcome project(std::size_t n) const;

  const MmHierConfig& config() const { return cfg_; }

 private:
  void fill_model(MmHierOutcome& out, std::size_t rows, std::size_t n) const;
  MmHierConfig cfg_;
};

}  // namespace xd::blas3
