#include "blas3/mm_multi.hpp"

#include <algorithm>
#include <cstring>
#include <cmath>

#include "common/parallel.hpp"
#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "telemetry/session.hpp"

namespace xd::blas3 {

namespace {

/// FIFO link: transfers serialize in request order at `rate` words/cycle.
struct Link {
  double rate;
  double free_at = 0.0;

  /// Move `words` once `ready`; returns completion time.
  double transfer(double ready, double words) {
    const double start = std::max(ready, free_at);
    free_at = start + words / rate;
    return free_at;
  }
};

}  // namespace

MmMultiEngine::MmMultiEngine(const MmMultiConfig& cfg) : cfg_(cfg) {
  require(cfg.l >= 1, "multi-FPGA GEMM needs l >= 1");
  require(cfg.k >= 1 && cfg.m >= 1 && cfg.m % cfg.k == 0,
          "multi-FPGA GEMM needs m divisible by k");
  require(cfg.b % cfg.m == 0 && cfg.b >= static_cast<std::size_t>(cfg.m) * cfg.l,
          "multi-FPGA GEMM needs b >= m*l and b a multiple of m");
  require(cfg.dram_words_per_cycle > 0.0 && cfg.link_words_per_cycle > 0.0,
          "bandwidths must be positive");
}

MmMultiOutcome MmMultiEngine::run(const std::vector<double>& a,
                                  const std::vector<double>& b, std::size_t n) {
  require(n >= 1 && n % cfg_.b == 0, "n must be a positive multiple of b");
  require(a.size() == n * n && b.size() == n * n, "GEMM: matrix size mismatch");

  const unsigned l = cfg_.l;
  const std::size_t m = cfg_.m;
  const std::size_t beta = cfg_.b / m;       // m-blocks per panel edge
  const std::size_t panels = n / cfg_.b;     // b-panels per matrix edge
  const double blk_words = static_cast<double>(m) * m;
  const double compute_cycles =
      static_cast<double>(m) * m * m / cfg_.k;  // per block product

  // hop[0]: DRAM -> FPGA_0; hop[f]: FPGA_{f-1} -> FPGA_f. The backward C
  // path uses the independent reverse channels of the same links.
  std::vector<Link> fwd, bwd;
  fwd.push_back(Link{cfg_.dram_words_per_cycle});
  bwd.push_back(Link{cfg_.dram_words_per_cycle});
  for (unsigned f = 1; f < l; ++f) {
    fwd.push_back(Link{cfg_.link_words_per_cycle});
    bwd.push_back(Link{cfg_.link_words_per_cycle});
  }

  MmMultiOutcome out;
  out.per_fpga.assign(l, FpgaStats{});
  std::vector<double> mm_free(l, 0.0);

  // Completion time of each C' m-block of the current C panel, per FPGA-
  // owned (g, h) pair; refreshed every (I, J) panel.
  std::vector<double> cblock_done(beta * beta, 0.0);
  double makespan = 0.0;
  double dram_words = 0.0, link_words = 0.0;

  // Arrival times of the current B block-row stripe per h, and of the
  // current A block per FPGA.
  std::vector<double> b_arrival(beta, 0.0);

  for (std::size_t pi = 0; pi < panels; ++pi) {
    for (std::size_t pj = 0; pj < panels; ++pj) {
      std::fill(cblock_done.begin(), cblock_done.end(), 0.0);
      for (std::size_t pq = 0; pq < panels; ++pq) {
        for (std::size_t z = 0; z < beta; ++z) {
          // Distribute B block-row z: block (z, h) travels to FPGA h % l.
          for (std::size_t h = 0; h < beta; ++h) {
            const unsigned target = static_cast<unsigned>(h % l);
            double t = fwd[0].transfer(0.0, blk_words);
            dram_words += blk_words;
            for (unsigned f = 1; f <= target; ++f) {
              t = fwd[f].transfer(t, blk_words);
              link_words += blk_words;
            }
            b_arrival[h] = t;
          }
          // Stream A blocks (g, z) through the whole chain; every FPGA
          // multiplies each against its owned B stripes.
          for (std::size_t g = 0; g < beta; ++g) {
            double a_arr = fwd[0].transfer(0.0, blk_words);
            dram_words += blk_words;
            for (unsigned f = 0; f < l; ++f) {
              if (f > 0) {
                a_arr = fwd[f].transfer(a_arr, blk_words);
                link_words += blk_words;
              }
              for (std::size_t h = f; h < beta; h += l) {
                const double ready = std::max(a_arr, b_arrival[h]);
                const double start = std::max(mm_free[f], ready);
                out.per_fpga[f].input_stall_cycles +=
                    static_cast<u64>(std::max(0.0, ready - mm_free[f]));
                mm_free[f] = start + compute_cycles;
                out.per_fpga[f].busy_cycles +=
                    static_cast<u64>(compute_cycles);
                ++out.per_fpga[f].blocks_computed;
                cblock_done[g * beta + h] =
                    std::max(cblock_done[g * beta + h], mm_free[f]);
              }
            }
          }
        }
      }
      // C panel finished: owned blocks stream back to DRAM through the
      // reverse channels (overlapping the next panel's compute).
      for (std::size_t g = 0; g < beta; ++g) {
        for (std::size_t h = 0; h < beta; ++h) {
          const unsigned owner = static_cast<unsigned>(h % l);
          double t = cblock_done[g * beta + h];
          for (unsigned f = owner; f >= 1; --f) {
            t = bwd[f].transfer(t, blk_words);
            link_words += blk_words;
          }
          t = bwd[0].transfer(t, blk_words);
          dram_words += blk_words;
          makespan = std::max(makespan, t);
        }
      }
    }
  }

  // Numerics: ascending-inner accumulation, the exact element-level order of
  // the PE array (bit-identical to MmArrayEngine / MmHierEngine).
  out.c.assign(n * n, 0.0);
  std::vector<u64> abits(n * n), bbits(n * n);
  std::memcpy(abits.data(), a.data(), n * n * sizeof(double));
  std::memcpy(bbits.data(), b.data(), n * n * sizeof(double));
  const fp::Backend& be = fp::active_backend();
  parallel_for(0, n, [&](std::size_t row) {
    for (std::size_t col = 0; col < n; ++col) {
      u64 acc = fp::kPosZero;
      for (std::size_t inner = 0; inner < n; ++inner) {
        acc = be.add(acc, be.mul(abits[row * n + inner], bbits[inner * n + col]));
      }
      out.c[row * n + col] = fp::from_bits(acc);
    }
  });

  out.report.design = cat("mm-multi l=", l, " k=", cfg_.k, " m=", m, " b=", cfg_.b);
  out.report.cycles = static_cast<u64>(std::ceil(makespan));
  out.report.compute_cycles = model_cycles(n);
  out.report.flops = 2ull * n * n * n;
  u64 stalls = 0;
  for (const auto& s : out.per_fpga) stalls += s.input_stall_cycles;
  out.report.stall_cycles = stalls;
  out.report.dram_words = dram_words;
  out.report.clock_mhz = cfg_.clock_mhz;
  out.dram_words = dram_words;
  out.link_words = link_words;

  if (telemetry::Session* tel = cfg_.telemetry) {
    const u64 compute = std::min(out.report.compute_cycles, out.report.cycles);
    tel->phase("compute", compute);
    tel->phase("staging", out.report.cycles - compute);
    tel->gauge("mem.dram.gemm.words").set(dram_words);
    tel->gauge("mem.link.gemm.words").set(link_words);
    tel->counter("fpu.gemm.mac.ops").add(static_cast<u64>(n) * n * n);
    tel->gauge("fpu.gemm.pe.count")
        .set(static_cast<double>(cfg_.k) * l);
    tel->counter("blas3.gemm_multi.runs").add(1);
    tel->counter("blas3.gemm_multi.cycles").add(out.report.cycles);
    tel->counter("blas3.gemm_multi.flops").add(out.report.flops);
    tel->counter("blas3.gemm_multi.stall_cycles").add(stalls);
    auto busy = tel->histogram("blas3.gemm_multi.fpga_busy_cycles");
    for (const auto& s : out.per_fpga) {
      busy.observe(static_cast<double>(s.busy_cycles));
    }
  }
  return out;
}

}  // namespace xd::blas3
