#include "blas3/mm_hier.hpp"

#include <algorithm>
#include <cstring>
#include <cmath>

#include "common/parallel.hpp"
#include "common/util.hpp"
#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "model/perf_model.hpp"
#include "telemetry/session.hpp"

namespace xd::blas3 {

MmHierEngine::MmHierEngine(const MmHierConfig& cfg) : cfg_(cfg) {
  require(cfg.l >= 1, "hierarchical GEMM needs l >= 1");
  require(cfg.k >= 1 && cfg.m >= 1 && cfg.m % cfg.k == 0,
          "hierarchical GEMM needs m divisible by k");
  // b must tile into m x m blocks and give every FPGA at least one block
  // column. (The paper's 12-chassis projection uses l = 72 with b = 2048,
  // where b/(m l) is not integral — the last round-robin turn is simply
  // short, so we do not require divisibility by m*l.)
  require(cfg.b >= static_cast<std::size_t>(cfg.m) * cfg.l && cfg.b % cfg.m == 0,
          "hierarchical GEMM needs b >= m*l and b a multiple of m");
  require(cfg.dram_words_per_cycle > 0.0 && cfg.link_words_per_cycle > 0.0,
          "bandwidths must be positive");
  const std::size_t slots = static_cast<std::size_t>(cfg.m) * cfg.m / cfg.k;
  require(slots >= cfg.adder_stages,
          cat("hazard condition violated: m^2/k = ", slots, " < adder depth ",
              cfg.adder_stages));
}

u64 MmHierEngine::model_cycles(std::size_t n) const {
  const u64 compute = static_cast<u64>(n) * n * n / (cfg_.k * cfg_.l);
  return compute + static_cast<u64>(cfg_.k) * cfg_.l;  // array traversal skew
}

void MmHierEngine::fill_model(MmHierOutcome& out, std::size_t rows,
                              std::size_t n) const {
  const double db = static_cast<double>(cfg_.b);

  // DRAM traffic (Sec 5.2, rows-general): each rows x n panel multiply
  // reads two b x b panels per step; C leaves once (rows x n words). The
  // formulas live in model/perf_model so the shard scheduler's analytic
  // model and this engine can never drift; rows == n reproduces the square
  // arithmetic bit-for-bit.
  const double dram_words = model::mm_hier_panel_dram_words(rows, n, cfg_.b);
  const u64 compute_cycles =
      model::mm_hier_panel_model_cycles(rows, n, cfg_.k, cfg_.l);
  const u64 cycles = model::mm_hier_panel_cycles(
      rows, n, cfg_.k, cfg_.l, cfg_.b,
      std::min(cfg_.dram_words_per_cycle, cfg_.link_words_per_cycle));

  out.report.design = cat("mm-hier l=", cfg_.l, " k=", cfg_.k, " m=", cfg_.m,
                          " b=", cfg_.b);
  out.report.cycles = cycles;
  out.report.compute_cycles = compute_cycles;
  out.report.flops = 2ull * rows * n * n;
  out.report.stall_cycles = cycles - compute_cycles;
  out.report.dram_words = dram_words;
  // Per-FPGA C' traffic: one read + one write per cycle (Sec 6.3), plus the
  // C-panel stream when l > 1 (one m x m block per m^2 b/(k l) cycles).
  const double cpanel_rate =
      cfg_.l > 1 ? 2.0 * static_cast<double>(cfg_.k) * cfg_.l / db : 0.0;
  out.required_sram_words_per_cycle = 2.0 + cpanel_rate;
  out.report.sram_words =
      out.required_sram_words_per_cycle * static_cast<double>(compute_cycles);
  out.report.clock_mhz = cfg_.clock_mhz;

  out.required_dram_words_per_cycle =
      3.0 * static_cast<double>(cfg_.k) * cfg_.l / db;
  out.required_link_words_per_cycle = out.required_dram_words_per_cycle;
  out.sram_panel_words = 2.0 * db * db;

  // The model is the single timing source for this engine, so the phase
  // breakdown and metrics come from it: "compute" is the PE-array busy time,
  // "staging" the I/O overhang beyond it, tiling [0, cycles) exactly.
  if (telemetry::Session* tel = cfg_.telemetry) {
    tel->phase("compute", compute_cycles);
    tel->phase("staging", cycles - compute_cycles);
    tel->gauge("mem.dram.gemm.words").set(dram_words);
    tel->gauge("mem.dram.gemm.required_words_per_cycle")
        .set(out.required_dram_words_per_cycle);
    tel->gauge("mem.link.gemm.required_words_per_cycle")
        .set(out.required_link_words_per_cycle);
    tel->gauge("mem.sram.gemm.panel_words").set(out.sram_panel_words);
    tel->gauge("mem.sram.gemm.required_words_per_cycle")
        .set(out.required_sram_words_per_cycle);
    tel->counter("fpu.gemm.mac.ops").add(static_cast<u64>(rows) * n * n);
    tel->gauge("fpu.gemm.pe.count")
        .set(static_cast<double>(cfg_.k) * cfg_.l);
    tel->counter("blas3.gemm.runs").add(1);
    tel->counter("blas3.gemm.cycles").add(cycles);
    tel->counter("blas3.gemm.compute_cycles").add(compute_cycles);
    tel->counter("blas3.gemm.flops").add(out.report.flops);
    tel->counter("blas3.gemm.stall_cycles").add(out.report.stall_cycles);
  }
}

MmHierOutcome MmHierEngine::project(std::size_t n) const {
  require(n % cfg_.b == 0, "n must be a multiple of b");
  MmHierOutcome out;
  fill_model(out, n, n);
  return out;
}

MmHierOutcome MmHierEngine::run(const std::vector<double>& a,
                                const std::vector<double>& b, std::size_t n) {
  return run_panel(a, n, b, n);
}

MmHierOutcome MmHierEngine::run_panel(const std::vector<double>& a,
                                      std::size_t rows,
                                      const std::vector<double>& b,
                                      std::size_t n) {
  require(n >= 1 && n % cfg_.b == 0, "n must be a positive multiple of b");
  require(rows >= 1, "GEMM panel needs at least one row");
  require(a.size() == rows * n && b.size() == n * n,
          "GEMM: matrix size mismatch");

  MmHierOutcome out;
  out.c.assign(rows * n, 0.0);

  // Numerics: every C element accumulates its products in ascending inner
  // index — the exact order the PE array produces (validated bit-for-bit
  // against MmArrayEngine in tests), independent of the blocking. This is
  // what makes row-panel sharding bit-identical to a single full run.
  std::vector<u64> abits(rows * n), bbits(n * n);
  std::memcpy(abits.data(), a.data(), rows * n * sizeof(double));
  std::memcpy(bbits.data(), b.data(), n * n * sizeof(double));
  const fp::Backend& be = fp::active_backend();
  parallel_for(0, rows, [&](std::size_t row) {
    for (std::size_t col = 0; col < n; ++col) {
      u64 acc = fp::kPosZero;
      for (std::size_t inner = 0; inner < n; ++inner) {
        acc = be.add(acc, be.mul(abits[row * n + inner], bbits[inner * n + col]));
      }
      out.c[row * n + col] = fp::from_bits(acc);
    }
  });

  fill_model(out, rows, n);
  return out;
}

}  // namespace xd::blas3
