#include "blas3/pe.hpp"

#include "common/util.hpp"
#include "fp/softfloat.hpp"

namespace xd::blas3 {

namespace {
constexpr unsigned kCidxBits = 24;
constexpr u64 kCidxMask = (1ull << kCidxBits) - 1;
constexpr u64 kFinalBit = 1ull << kCidxBits;
constexpr unsigned kDestShift = kCidxBits + 1;
}  // namespace

u64 MmPe::pack_tag(std::size_t cidx, bool final_, u64 dest) {
  return (dest << kDestShift) | (final_ ? kFinalBit : 0) | (cidx & kCidxMask);
}

MmPe::MmPe(unsigned id, unsigned m, unsigned k, unsigned mult_stages,
           unsigned adder_stages)
    : id_(id), mult_(mult_stages), adder_(adder_stages) {
  require(k >= 1 && m >= 1 && m % k == 0, "PE needs m divisible by k");
  const std::size_t slots = static_cast<std::size_t>(m) * m / k;
  require(slots < (1ull << kCidxBits), "C' store exceeds tag encoding");
  cprime_.assign(slots, CSlot{});
}

void MmPe::issue_mac(u64 a, u64 b, std::size_t cidx, bool final_, u64 dest) {
  ++macs_;
  mult_.issue(a, b, pack_tag(cidx, final_, dest));
}

void MmPe::tick() {
  mult_.tick();
  adder_.tick();

  if (auto r = adder_.take_output()) {
    const std::size_t cidx = static_cast<std::size_t>(r->tag & kCidxMask);
    CSlot& slot = cprime_.at(cidx);
    if (!slot.inflight) {
      throw SimError(cat("PE", id_, ": adder write-back to idle C' slot"));
    }
    slot.inflight = false;
    if (r->tag & kFinalBit) {
      if (out_.has_value()) {
        throw SimError(cat("PE", id_, ": C output port collision"));
      }
      out_ = COutput{r->bits, r->tag >> kDestShift};
      slot.bits = fp::kPosZero;  // ready for the next C block
    } else {
      slot.bits = r->bits;
    }
  }

  if (auto r = mult_.take_output()) {
    const std::size_t cidx = static_cast<std::size_t>(r->tag & kCidxMask);
    CSlot& slot = cprime_.at(cidx);
    if (slot.inflight) {
      // m^2/k < adder depth: the previous accumulation has not retired.
      throw SimError(cat("PE", id_,
                         ": C' read-after-write hazard (m^2/k < adder depth)"));
    }
    adder_.issue(r->bits, slot.bits, r->tag);
    slot.inflight = true;
  }
}

std::optional<COutput> MmPe::take_output() {
  auto r = out_;
  out_.reset();
  return r;
}

}  // namespace xd::blas3
