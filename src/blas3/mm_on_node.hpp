// GEMM executed against a full simulated compute node (the Table 4 Level 3
// experiment, end to end): the k-PE array computes m x m block products from
// A/B blocks fetched over the RapidArray link, the dedicated accumulation
// adder folds them into the C' panel held in two SRAM banks (one read and
// one write port word per cycle — the paper's measured 2.1 GB/s), and the
// finished C panel leaves through the C banks back to DRAM.
//
// Against blas3::MmArrayEngine (abstract channel) this engine moves every
// C' word through real SramBank ports and every A/B/C word across the real
// DRAM link, so the Table 4 bandwidth rows (2.1 GB/s SRAM, 24-49 MB/s DRAM,
// 0.7% I/O fraction) are measured, not computed.
#pragma once

#include <vector>

#include "blas3/mm_array.hpp"  // MmOutcome
#include "machine/node.hpp"

namespace xd::blas3 {

struct MmOnNodeConfig {
  unsigned k = 8;
  unsigned m = 8;       ///< on-chip block edge (m % k == 0, m^2/k >= 8)
  std::size_t b = 512;  ///< SRAM panel edge (b % m == 0)
  /// Optional telemetry sink (per-bank mem.sram.bankN.* / mem.dram.link.* /
  /// blas3.gemm_node.* metrics plus a "compute" phase span).
  telemetry::Session* telemetry = nullptr;
};

class MmOnNodeEngine {
 public:
  MmOnNodeEngine(machine::ComputeNode& node, const MmOnNodeConfig& cfg = {});

  /// C = A * B for row-major n x n (n a multiple of b); A and B start in the
  /// node's DRAM, C' lives in SRAM banks 0/1, C in banks 2/3.
  MmOutcome run(const std::vector<double>& a, const std::vector<double>& b,
                std::size_t n);

 private:
  machine::ComputeNode& node_;
  MmOnNodeConfig cfg_;
};

}  // namespace xd::blas3
