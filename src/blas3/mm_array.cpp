#include "blas3/mm_array.hpp"

#include <cstring>
#include <deque>

#include "common/util.hpp"
#include "fp/softfloat.hpp"
#include "mem/channel.hpp"
#include "telemetry/session.hpp"

namespace xd::blas3 {

namespace {

/// Per-PE iteration state over (C-block, z-block, outer product, A element,
/// column group). All PEs execute the same sequence, offset by their array
/// position (the systolic skew).
struct OpCursor {
  std::size_t gh = 0, z = 0, q = 0, i = 0, c = 0;
  bool done = false;

  void advance(std::size_t blocks, std::size_t m, std::size_t cpk) {
    if (++c < cpk) return;
    c = 0;
    if (++i < m) return;
    i = 0;
    if (++q < m) return;
    q = 0;
    if (++z < blocks) return;
    z = 0;
    if (++gh < blocks * blocks) return;
    done = true;
  }
};

}  // namespace

MmArrayEngine::MmArrayEngine(const MmArrayConfig& cfg) : cfg_(cfg) {
  require(cfg.k >= 1, "GEMM array needs k >= 1");
  require(cfg.m >= 1 && cfg.m % cfg.k == 0, "GEMM array needs m divisible by k");
  require(cfg.mem_words_per_cycle > 0.0, "memory bandwidth must be positive");
  const std::size_t slots = static_cast<std::size_t>(cfg.m) * cfg.m / cfg.k;
  require(slots >= cfg.adder_stages,
          cat("GEMM array hazard condition violated: m^2/k = ", slots,
              " < adder depth ", cfg.adder_stages));
}

MmOutcome MmArrayEngine::run(const std::vector<double>& a,
                             const std::vector<double>& b, std::size_t n) {
  require(n >= 1 && n % cfg_.m == 0, "n must be a positive multiple of m");
  require(a.size() == n * n && b.size() == n * n, "GEMM: matrix size mismatch");

  const std::size_t m = cfg_.m;
  const unsigned k = cfg_.k;
  const std::size_t cpk = m / k;           // column groups per PE
  const std::size_t blocks = n / m;        // blocks per matrix edge
  const std::size_t out_cap =
      cfg_.c_storage_words ? cfg_.c_storage_words : m * m;

  mem::Channel channel(cfg_.mem_words_per_cycle, "mm.mem",
                       /*burst_words=*/cfg_.mem_words_per_cycle * 4.0);

  std::vector<MmPe> pes;
  pes.reserve(k);
  for (unsigned p = 0; p < k; ++p) {
    pes.emplace_back(p, static_cast<unsigned>(m), k, cfg_.multiplier_stages,
                     cfg_.adder_stages);
  }
  std::vector<OpCursor> cursors(k);

  // Pre-convert both operands once; the issue loop below only indexes bits.
  std::vector<u64> abits(n * n), bbits(n * n);
  std::memcpy(abits.data(), a.data(), n * n * sizeof(double));
  std::memcpy(bbits.data(), b.data(), n * n * sizeof(double));

  MmOutcome out;
  out.c.assign(n * n, 0.0);

  std::deque<u64> out_backlog;  // C words awaiting the memory write port
  std::size_t peak_backlog = 0;
  u64 input_words = 0, output_words = 0;
  u64 input_stalls = 0, output_stalls = 0;
  u64 cycle = 0, op_step = 0;

  auto all_done = [&] {
    for (unsigned p = 0; p < k; ++p) {
      if (!cursors[p].done || pes[p].busy()) return false;
    }
    return out_backlog.empty();
  };

  const u64 budget = model_cycles(n) * 8 + 1'000'000;
  while (!all_done()) {
    ++cycle;
    if (cycle > budget) throw SimError("GEMM array wedged (bandwidth too low?)");
    channel.tick();

    // Datapaths advance even while the input stream stalls (in-flight
    // operations keep retiring); collect C words leaving on the backward path.
    for (auto& pe : pes) {
      pe.tick();
      if (auto o = pe.take_output()) {
        out.c.at(o->dest) = fp::from_bits(o->bits);
        out_backlog.push_back(o->dest);
      }
    }
    peak_backlog = std::max(peak_backlog, out_backlog.size());

    // PE_0's memory write port: one C word per cycle when credit allows.
    if (!out_backlog.empty() && channel.can_transfer(1.0)) {
      channel.transfer(1.0);
      out_backlog.pop_front();
      ++output_words;
    }

    // Issue step: the whole array moves in lockstep. A new A element (and the
    // prefetched B element) enters at PE_0 whenever PE_0 starts a c == 0 op;
    // stall the array if the channel cannot deliver 2 words, or if the C
    // storage backlog is full.
    bool stall = false;
    if (!cursors[0].done && cursors[0].c == 0) {
      if (!channel.can_transfer(2.0)) {
        stall = true;
        ++input_stalls;
      }
    }
    if (!stall && out_backlog.size() >= out_cap) {
      stall = true;
      ++output_stalls;
    }
    if (stall) continue;

    for (unsigned p = 0; p < k; ++p) {
      if (op_step < p || cursors[p].done) continue;
      OpCursor& cur = cursors[p];
      if (p == 0 && cur.c == 0) {
        channel.transfer(2.0);
        input_words += 2;
      }
      const std::size_t g = cur.gh / blocks;
      const std::size_t h = cur.gh % blocks;
      const std::size_t row = g * m + cur.i;
      const std::size_t col = h * m + cur.c * k + p;
      const std::size_t inner = cur.z * m + cur.q;
      const bool final_ = (cur.z == blocks - 1 && cur.q == m - 1);
      pes[p].issue_mac(abits[row * n + inner], bbits[inner * n + col],
                       cur.i * cpk + cur.c, final_, row * n + col);
      cur.advance(blocks, m, cpk);
    }
    ++op_step;
  }

  out.report.design = cat("mm-array k=", k, " m=", m);
  out.report.cycles = cycle;
  out.report.compute_cycles = cycle;
  out.report.flops = 2ull * n * n * n;
  out.report.stall_cycles = input_stalls + output_stalls;
  out.report.sram_words = static_cast<double>(input_words + output_words);
  out.report.clock_mhz = cfg_.clock_mhz;

  if (telemetry::Session* tel = cfg_.telemetry) {
    tel->phase("compute", cycle);
    channel.publish(tel->metrics(), "mem.gemm.sram");
    tel->counter("mem.gemm.input_words").add(input_words);
    tel->counter("mem.gemm.output_words").add(output_words);
    tel->counter("fpu.gemm.mac.ops")
        .add(static_cast<u64>(n) * n * n);
    tel->gauge("fpu.gemm.pe.count").set(static_cast<double>(k));
    tel->gauge("fpu.gemm.pe.peak_c_backlog_words")
        .set(static_cast<double>(peak_backlog));
    tel->counter("blas3.gemm_array.runs").add(1);
    tel->counter("blas3.gemm_array.cycles").add(cycle);
    tel->counter("blas3.gemm_array.flops").add(out.report.flops);
    tel->counter("blas3.gemm_array.input_stall_cycles").add(input_stalls);
    tel->counter("blas3.gemm_array.output_stall_cycles").add(output_stalls);
  }
  return out;
}

}  // namespace xd::blas3
