// Cycle-accurate multi-FPGA GEMM (Sec 5.2) at block-event granularity.
//
// The hierarchical design moves m x m blocks: FPGA_0 reads A/B blocks from
// DRAM and forwards them down the RocketIO chain; FPGA_f keeps the stripes
// of each B block-row assigned to it (block-columns h with h mod l == f),
// multiplies every incoming A block against them on its internal MM array
// (m^3/k cycles per block product, validated cycle-exactly by
// blas3::MmArrayEngine), accumulates C' panels in its SRAM, and streams
// finished C blocks back toward FPGA_0.
//
// This engine simulates that pipeline cycle by cycle at the block level:
//  - channels carry 2 m^2 words per A/B block pair and m^2 per C block, at
//    the configured words/cycle rates (DRAM link at FPGA_0, inter-FPGA
//    links elsewhere);
//  - each FPGA's MM array is busy m^3/k cycles per assigned block product
//    and its accumulation adder folds the result into the SRAM C' panel;
//  - numerics use the exact softfloat accumulation order of the element-
//    level array.
// The element-level timing inside one FPGA is already validated by
// MmArrayEngine; what this adds is the *inter-FPGA* pipeline: forwarding
// latency, link contention, load balance across f, and the backward C path.
#pragma once

#include <cstddef>
#include <vector>

#include "host/report.hpp"
#include "common/util.hpp"

namespace xd::telemetry {
class Session;
}

namespace xd::blas3 {

struct MmMultiConfig {
  unsigned l = 2;       ///< FPGAs in the chain
  unsigned k = 8;       ///< PEs per FPGA
  unsigned m = 8;       ///< on-chip block edge
  std::size_t b = 64;   ///< SRAM panel edge (b % m == 0, b >= m*l)
  double dram_words_per_cycle = 2.0;  ///< FPGA_0 <-> DRAM
  double link_words_per_cycle = 2.0;  ///< FPGA_f <-> FPGA_f+1
  double clock_mhz = 130.0;
  /// Optional telemetry sink (mem.dram.gemm.* / mem.link.gemm.* /
  /// blas3.gemm_multi.* metrics plus "compute"/"staging" phase spans).
  telemetry::Session* telemetry = nullptr;
};

struct FpgaStats {
  u64 busy_cycles = 0;       ///< MM array busy
  u64 blocks_computed = 0;
  u64 input_stall_cycles = 0;  ///< waiting for an A/B block
};

struct MmMultiOutcome {
  std::vector<double> c;
  host::PerfReport report;
  std::vector<FpgaStats> per_fpga;
  double dram_words = 0.0;
  double link_words = 0.0;  ///< total across all inter-FPGA hops
};

class MmMultiEngine {
 public:
  explicit MmMultiEngine(const MmMultiConfig& cfg);

  /// C = A * B, row-major n x n, n a multiple of b.
  MmMultiOutcome run(const std::vector<double>& a, const std::vector<double>& b,
                     std::size_t n);

  /// Sec 5.2 model: n^3/(k l) cycles.
  u64 model_cycles(std::size_t n) const {
    return static_cast<u64>(n) * n * n / (static_cast<u64>(cfg_.k) * cfg_.l);
  }

  const MmMultiConfig& config() const { return cfg_; }

 private:
  MmMultiConfig cfg_;
};

}  // namespace xd::blas3
