#include "blas3/mm_on_node.hpp"

#include <cstring>

#include "common/parallel.hpp"
#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "telemetry/session.hpp"

namespace xd::blas3 {

MmOnNodeEngine::MmOnNodeEngine(machine::ComputeNode& node,
                               const MmOnNodeConfig& cfg)
    : node_(node), cfg_(cfg) {
  require(cfg.k >= 1 && cfg.m >= 1 && cfg.m % cfg.k == 0,
          "node GEMM needs m divisible by k");
  require(static_cast<std::size_t>(cfg.m) * cfg.m / cfg.k >= 8,
          "node GEMM hazard condition: m^2/k >= 8");
  require(cfg.b % cfg.m == 0, "node GEMM needs b a multiple of m");
  require(node.sram_bank_count() >= 4,
          "node GEMM uses two C' banks and two C banks");
  require(static_cast<std::size_t>(cfg.b) * cfg.b <=
              2 * node.sram(0).storage().words(),
          "C' panel exceeds the two SRAM banks");
}

MmOutcome MmOnNodeEngine::run(const std::vector<double>& a,
                              const std::vector<double>& b, std::size_t n) {
  require(n >= 1 && n % cfg_.b == 0, "n must be a positive multiple of b");
  require(a.size() == n * n && b.size() == n * n, "GEMM: size mismatch");
  require(2 * n * n <= node_.dram().storage().words(),
          "modeled DRAM slice too small for A and B");

  const std::size_t m = cfg_.m;
  const std::size_t m2 = m * m;
  const u64 block_cycles = m2 * m / cfg_.k;  // per block product
  const std::size_t merge_interval = m / cfg_.k;  // C' touch every m/k cycles
  const std::size_t beta = cfg_.b / m;
  const std::size_t panels = n / cfg_.b;
  const std::size_t bank_words = node_.sram(0).storage().words();

  u64 cycle = 0;
  u64 input_stalls = 0;
  double prefetched = 0.0;   // A/B words fetched ahead of the consumer
  double c_backlog = 0.0;    // C words awaiting the link
  double dram_in = 0.0, dram_out = 0.0;
  std::size_t cprime_addr = 0;
  // Double-buffered on-chip staging: one B block-row + one A block ahead.
  const double prefetch_cap_ =
      2.0 * (static_cast<double>(cfg_.b) * m + static_cast<double>(m2));

  // One simulated clock cycle: SRAM C' merge traffic, link credit split
  // between the C output stream (via a C-bank read port) and the A/B
  // prefetch stream.
  auto tick_cycle = [&](bool computing) {
    node_.tick();
    ++cycle;
    if (computing && (merge_interval <= 1 || cycle % merge_interval == 0)) {
      // One C' read + one C' write per touch; the panel spans banks 0 and 1.
      const std::size_t bank = cprime_addr / bank_words;
      const std::size_t addr = cprime_addr % bank_words;
      node_.sram(bank).read(addr);
      node_.sram(bank).write(addr, 0);
      cprime_addr = (cprime_addr + 1) % (2 * bank_words);
    }
    auto& link = node_.dram().link();
    // C output has priority (one word per cycle through a C-bank port).
    if (c_backlog > 0.0 && link.can_transfer(1.0)) {
      link.transfer(1.0);
      c_backlog -= 1.0;
      dram_out += 1.0;
    }
    while (prefetched < prefetch_cap_ && link.can_transfer(1.0)) {
      link.transfer(1.0);
      prefetched += 1.0;
      dram_in += 1.0;
    }
  };

  // Host loads A and B into DRAM (free) — we only track the FPGA-side moves.
  // Fetch pattern of the Sec 5.2 algorithm at l = 1: per z, the B block-row
  // (b*m words) is staged on chip once; each A block (m^2 words) streams in
  // once and multiplies against all beta stored B blocks. Double-buffered
  // on-chip staging caps how far the link may run ahead.
  const double b_row_words = static_cast<double>(cfg_.b) * m;
  const double a_block_words = static_cast<double>(m2);

  auto demand = [&](double words) {
    while (prefetched < words) {
      tick_cycle(/*computing=*/false);
      ++input_stalls;
    }
    prefetched -= words;
  };

  u64 total_block_products = 0;
  for (std::size_t pi = 0; pi < panels; ++pi) {
    for (std::size_t pj = 0; pj < panels; ++pj) {
      for (std::size_t pq = 0; pq < panels; ++pq) {
        for (std::size_t z = 0; z < beta; ++z) {
          demand(b_row_words);  // B block-row z of this q-panel
          for (std::size_t g = 0; g < beta; ++g) {
            demand(a_block_words);  // A block (g, z)
            for (std::size_t h = 0; h < beta; ++h) {
              for (u64 t = 0; t < block_cycles; ++t) {
                tick_cycle(/*computing=*/true);
              }
              ++total_block_products;
            }
          }
        }
      }
      // C panel finished: b^2 words join the output stream.
      c_backlog += static_cast<double>(cfg_.b) * cfg_.b;
    }
  }
  while (c_backlog > 0.0) tick_cycle(/*computing=*/false);

  // Numerics: the validated ascending-inner accumulation order.
  MmOutcome out;
  out.c.assign(n * n, 0.0);
  std::vector<u64> abits(n * n), bbits(n * n);
  std::memcpy(abits.data(), a.data(), n * n * sizeof(double));
  std::memcpy(bbits.data(), b.data(), n * n * sizeof(double));
  const fp::Backend& be = fp::active_backend();
  parallel_for(0, n, [&](std::size_t row) {
    for (std::size_t col = 0; col < n; ++col) {
      u64 acc = fp::kPosZero;
      for (std::size_t inner = 0; inner < n; ++inner) {
        acc = be.add(acc, be.mul(abits[row * n + inner], bbits[inner * n + col]));
      }
      out.c[row * n + col] = fp::from_bits(acc);
    }
  });

  out.report.design = cat("mm-on-node k=", cfg_.k, " m=", m, " b=", cfg_.b);
  out.report.cycles = cycle;
  out.report.compute_cycles = total_block_products * block_cycles;
  out.report.flops = 2ull * n * n * n;
  out.report.stall_cycles = input_stalls;
  out.report.sram_words =
      2.0 * static_cast<double>(total_block_products) * block_cycles /
      static_cast<double>(merge_interval ? merge_interval : 1);
  out.report.dram_words = dram_in + dram_out;
  out.report.clock_mhz = node_.clock_mhz();

  if (telemetry::Session* tel = cfg_.telemetry) {
    tel->phase("compute", cycle);
    for (unsigned bank = 0; bank < node_.sram_bank_count(); ++bank) {
      node_.sram(bank).publish(tel->metrics(), cat("mem.sram.bank", bank));
    }
    node_.dram().link().publish(tel->metrics(), "mem.dram.link");
    tel->counter("fpu.gemm.mac.ops").add(static_cast<u64>(n) * n * n);
    tel->gauge("fpu.gemm.pe.count").set(static_cast<double>(cfg_.k));
    tel->counter("blas3.gemm_node.runs").add(1);
    tel->counter("blas3.gemm_node.cycles").add(cycle);
    tel->counter("blas3.gemm_node.flops").add(out.report.flops);
    tel->counter("blas3.gemm_node.stall_cycles").add(input_stalls);
  }
  return out;
}

}  // namespace xd::blas3
