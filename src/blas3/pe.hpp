// Processing element of the GEMM linear array (Sec 5.1, Fig 7).
//
// Each PE owns one pipelined multiplier, one pipelined adder, a register file
// for its stripe of the current B row, and an m^2/k-entry C' store holding
// the intermediate results of the C-block columns assigned to it
// (columns p, k+p, 2k+p, ... for PE_p). A MAC takes the incoming A element
// and a stored B element, multiplies them, and folds the product into a C'
// entry; each C' entry is touched once per outer product, i.e. every m^2/k
// cycles, so hazard freedom requires m^2/k >= adder depth — the PE detects
// violations at simulation time.
//
// On the MAC of the *final* outer product for an entry, the write-back is
// diverted to the C output stream (the linear array's backward path) and the
// C' entry resets to zero, ready for the next C block — this is exactly how
// the hardware streams C out while the next block multiply proceeds, which
// is why the design needs the separate C storage (modeled as the engine's
// output backlog).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "fp/fpu.hpp"

namespace xd::blas3 {

/// A C element leaving a PE on the backward path.
struct COutput {
  u64 bits = 0;
  u64 dest = 0;  ///< engine-assigned destination tag (global C index)
};

class MmPe {
 public:
  MmPe(unsigned id, unsigned m, unsigned k,
       unsigned mult_stages = fp::kMultiplierStages,
       unsigned adder_stages = fp::kAdderStages);

  /// Advance one cycle: move multiplier output into the adder (with hazard
  /// detection on the C' entry) and retire adder output into C' or the C
  /// output stream.
  void tick();

  /// Issue one MAC: product a*b accumulates into C' slot `cidx`. When `final_`
  /// is set, the result leaves on the C stream tagged `dest` and the slot
  /// resets to +0.
  void issue_mac(u64 a, u64 b, std::size_t cidx, bool final_, u64 dest);

  /// C element (if any) that left the PE this cycle.
  std::optional<COutput> take_output();

  bool busy() const { return mult_.busy() || adder_.busy(); }
  unsigned id() const { return id_; }
  std::size_t cprime_words() const { return cprime_.size(); }
  u64 macs_issued() const { return macs_; }

 private:
  struct CSlot {
    u64 bits = fp::kPosZero;
    bool inflight = false;
  };
  // Adder tag packs (cidx, final, dest); see mm_array.cpp for the encoding
  // rationale (dest indexes the full C matrix).
  static u64 pack_tag(std::size_t cidx, bool final_, u64 dest);

  unsigned id_;
  fp::PipelinedMultiplier mult_;
  fp::PipelinedAdder adder_;
  std::vector<CSlot> cprime_;
  std::optional<COutput> out_;
  u64 macs_ = 0;
};

}  // namespace xd::blas3
