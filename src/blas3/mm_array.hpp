// Level 3 BLAS: dense matrix multiply on a linear array of k PEs (Sec 5.1).
//
// The design performs block matrix multiply with m x m blocks held on-chip
// (total storage 2m^2 words). A streams in column-major order within a
// block, B in row-major order; each outer product q broadcasts column q of
// the A block through the array while the PEs hold their stripes of row q of
// the B block. Every PE issues one multiply-accumulate per cycle, so a block
// multiply takes m^3/k cycles and the full n x n product takes n^3/k
// effective cycles. Two input words cross the memory port every m/k cycles
// and m^2 result words leave per C block, for a total requirement of 3k/m
// words/cycle — the engine throttles on a channel with the configured rate
// and reports stalls when the requirement is not met (the I/O-vs-compute
// crossover the paper's Sec 5 analyzes).
//
// z-blocks accumulate into the PEs' C' stores across block multiplies of the
// same C block; the final outer product's write-backs stream out on the
// backward path while the next C block's computation begins immediately —
// no inter-block drain, exactly as in the hardware.
#pragma once

#include <cstddef>
#include <vector>

#include "blas3/pe.hpp"
#include "host/report.hpp"

namespace xd::telemetry {
class Session;
}

namespace xd::blas3 {

struct MmArrayConfig {
  unsigned k = 8;  ///< PEs in the linear array
  unsigned m = 8;  ///< on-chip block edge (m % k == 0)
  /// Accumulation-adder depth. NOTE: the paper's own k = m = 8 configuration
  /// updates each C' entry every m^2/k = 8 cycles, which its hazard condition
  /// only permits with an adder of <= 8 stages — shallower than the 14-stage
  /// core of Table 2. The PE runs at 130-155 MHz (well below the cores'
  /// 170 MHz), consistent with a reduced-depth accumulation adder; we default
  /// to 8 stages and the engine rejects any configuration violating
  /// m^2/k >= depth.
  unsigned adder_stages = 8;
  unsigned multiplier_stages = fp::kMultiplierStages;
  /// External memory rate in words/cycle; the design needs 3k/m sustained.
  double mem_words_per_cycle = 4.0;
  double clock_mhz = 130.0;  ///< Table 4 clock for k=8 on XD1
  /// C-output backlog the array can buffer (the per-PE C storage). Defaults
  /// to m^2 (k stores of m^2/k words each) when 0.
  std::size_t c_storage_words = 0;
  /// Optional telemetry sink (mem.gemm.* / fpu.gemm.* / blas3.gemm_array.*
  /// metrics plus a "compute" phase span).
  telemetry::Session* telemetry = nullptr;
};

struct MmOutcome {
  std::vector<double> c;  ///< row-major n x n result
  host::PerfReport report;
};

class MmArrayEngine {
 public:
  explicit MmArrayEngine(const MmArrayConfig& cfg);

  /// C = A * B for row-major n x n matrices; n must be a multiple of m.
  MmOutcome run(const std::vector<double>& a, const std::vector<double>& b,
                std::size_t n);

  const MmArrayConfig& config() const { return cfg_; }

  /// The design's effective-latency model: n^3 / k cycles (Sec 5.1).
  u64 model_cycles(std::size_t n) const {
    return static_cast<u64>(n) * n * n / cfg_.k;
  }
  /// Required memory bandwidth in words/cycle: 3k/m (Sec 5.1).
  double required_words_per_cycle() const {
    return 3.0 * static_cast<double>(cfg_.k) / static_cast<double>(cfg_.m);
  }
  /// Total on-chip storage used: 2 m^2 words (C' + C stores).
  std::size_t storage_words() const {
    return 2ull * cfg_.m * cfg_.m;
  }

 private:
  MmArrayConfig cfg_;
};

}  // namespace xd::blas3
