#include "fp/softfloat.hpp"

#include <utility>

namespace xd::fp {
namespace {

// Unpacked finite value: magnitude = sig * 2^(exp - kBias - kFracBits), where
// for normals the hidden bit (bit 52) is set in `sig` and `exp` is the biased
// exponent; subnormals are represented with exp == 1 and bit 52 clear, which
// makes the magnitude formula uniform across normal/subnormal.
struct Unpacked {
  bool sign;
  int exp;  // biased, >= 1 for all finite nonzero values
  u64 sig;  // 53-bit significand (hidden bit included for normals)
};

Unpacked unpack(u64 b) {
  Unpacked u;
  u.sign = sign_of(b);
  const int e = exp_of(b);
  const u64 f = frac_of(b);
  if (e == 0) {
    u.exp = 1;  // subnormal: same scale as exp == 1, no hidden bit
    u.sig = f;
  } else {
    u.exp = e;
    u.sig = f | kHiddenBit;
  }
  return u;
}

/// Shift right by `n` with "jamming": any bit shifted out keeps bit 0 set so
/// sticky information is never lost.
u64 shift_right_jam(u64 v, int n) {
  if (n <= 0) return v;
  if (n >= 64) return v != 0 ? 1 : 0;
  const u64 lost = v & ((1ull << n) - 1);
  return (v >> n) | (lost != 0 ? 1 : 0);
}

/// Round-to-nearest-even and pack. The extended significand `xsig` carries the
/// hidden bit at position 55 for a normalized value and three
/// guard/round/sticky bits in [2:0]. `exp` is the biased exponent; values that
/// fell below the minimum are shifted into the subnormal range first.
/// Handles exponent overflow to infinity.
u64 round_pack(bool sign, int exp, u64 xsig) {
  const u64 s = sign ? kSignMask : 0;
  if (exp < 1) {
    xsig = shift_right_jam(xsig, 1 - exp);
    exp = 1;
  }
  const u64 grs = xsig & 0x7;
  u64 sig = xsig >> 3;
  if (grs > 0x4 || (grs == 0x4 && (sig & 1))) {
    ++sig;
    if (sig & (kHiddenBit << 1)) {  // rounding carried out of the significand
      sig >>= 1;                    // exact: carry-out means low bits are zero
      ++exp;
    }
  }
  if (sig == 0) return s;           // underflowed to signed zero
  if (exp >= 0x7FF) return s | kPosInf;
  if (sig & kHiddenBit) {
    return s | (static_cast<u64>(exp) << kFracBits) | (sig & kFracMask);
  }
  return s | sig;  // subnormal: exponent field 0, scale of exp == 1
}

// Working frame for add/sub: significands are shifted left by 7, putting the
// hidden bit at position 59. The four extra bits below the GRS frame give the
// subtract path headroom: after an alignment shift of d >= 2 the result needs
// at most one renormalizing left shift, so a jammed sticky bit can move from
// bit 0 to bit 1 and still be collapsed correctly when converting down to the
// 3-bit GRS frame. For d <= 1 the alignment is exact and no sticky exists.
constexpr int kFrameShift = 7;
constexpr u64 kFrameHidden = kHiddenBit << kFrameShift;  // bit 59

/// Collapse the 7-bit working frame to round_pack's 3-bit GRS frame.
u64 frame_to_grs(u64 v) {
  return (v >> 4) | ((v & 0xF) != 0 ? 1 : 0);
}

/// Magnitude addition of ordered operands (|big| >= |small|); result sign is
/// `sign`.
u64 add_magnitudes(bool sign, const Unpacked& big, const Unpacked& small) {
  const u64 bs = big.sig << kFrameShift;
  const u64 ss = shift_right_jam(small.sig << kFrameShift, big.exp - small.exp);
  u64 sum = bs + ss;
  int exp = big.exp;
  if (sum & (kFrameHidden << 1)) {  // carry out: renormalize right with jam
    sum = shift_right_jam(sum, 1);
    ++exp;
  }
  return round_pack(sign, exp, frame_to_grs(sum));
}

/// Magnitude subtraction |big| - |small| with |big| >= |small| (by exponent,
/// then significand); result takes `sign`.
u64 sub_magnitudes(bool sign, const Unpacked& big, const Unpacked& small) {
  u64 bs = big.sig << kFrameShift;
  u64 ss = shift_right_jam(small.sig << kFrameShift, big.exp - small.exp);
  if (bs == ss) return kPosZero;  // exact cancellation -> +0 under RNE
  if (bs < ss) std::swap(bs, ss);  // only possible when exponents are equal
  u64 diff = bs - ss;
  int exp = big.exp;
  // Renormalize left. When alignment lost bits (d >= 2) at most one shift is
  // needed (see frame comment); otherwise the value is exact and arbitrary
  // shifts are safe.
  while (!(diff & kFrameHidden) && exp > 1) {
    diff <<= 1;
    --exp;
  }
  return round_pack(sign, exp, frame_to_grs(diff));
}

}  // namespace

u64 add(u64 a, u64 b) {
  // NaN propagation: prefer a's payload (x86 behaviour), quieting it.
  if (is_nan(a)) return quiet(a);
  if (is_nan(b)) return quiet(b);
  if (is_inf(a)) {
    if (is_inf(b) && sign_of(a) != sign_of(b)) return kDefaultNaN;  // inf - inf
    return a;
  }
  if (is_inf(b)) return b;
  if (is_zero(a) && is_zero(b)) {
    // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed signs -> +0 under round-to-nearest.
    return (sign_of(a) && sign_of(b)) ? kNegZero : kPosZero;
  }
  if (is_zero(a)) return b;
  if (is_zero(b)) return a;

  const Unpacked ua = unpack(a);
  const Unpacked ub = unpack(b);
  const bool a_ge_b = (ua.exp > ub.exp) || (ua.exp == ub.exp && ua.sig >= ub.sig);
  const Unpacked& big = a_ge_b ? ua : ub;
  const Unpacked& small = a_ge_b ? ub : ua;
  const bool result_sign = big.sign;

  if (ua.sign == ub.sign) return add_magnitudes(result_sign, big, small);
  return sub_magnitudes(result_sign, big, small);
}

u64 sub(u64 a, u64 b) {
  if (is_nan(b)) return quiet(b);  // preserve payload before negating
  return add(a, neg(b));
}

u64 mul(u64 a, u64 b) {
  if (is_nan(a)) return quiet(a);
  if (is_nan(b)) return quiet(b);
  const bool sign = sign_of(a) != sign_of(b);
  const u64 s = sign ? kSignMask : 0;
  if (is_inf(a) || is_inf(b)) {
    if (is_zero(a) || is_zero(b)) return kDefaultNaN;  // 0 * inf
    return s | kPosInf;
  }
  if (is_zero(a) || is_zero(b)) return s;  // signed zero

  Unpacked ua = unpack(a);
  Unpacked ub = unpack(b);
  // Normalize subnormal inputs so both significands carry the hidden bit;
  // compensate in the exponent. This pins the product's top bit to position
  // 105 or 104 of the 128-bit product.
  auto normalize = [](Unpacked& u) {
    while (!(u.sig & kHiddenBit)) {
      u.sig <<= 1;
      --u.exp;
    }
  };
  normalize(ua);
  normalize(ub);

  const unsigned __int128 prod =
      static_cast<unsigned __int128>(ua.sig) * static_cast<unsigned __int128>(ub.sig);
  // Significands are in [2^52, 2^53), so prod is in [2^104, 2^106).
  int exp = ua.exp + ub.exp - kBias + 1;
  u64 xsig;  // round_pack frame: significand at [55:3], GRS at [2:0]
  if (prod >> 105) {
    const u64 kept = static_cast<u64>(prod >> 50);
    const bool sticky = (static_cast<u64>(prod) & ((1ull << 50) - 1)) != 0;
    xsig = kept | (sticky ? 1 : 0);
  } else {
    const u64 kept = static_cast<u64>(prod >> 49);
    const bool sticky = (static_cast<u64>(prod) & ((1ull << 49) - 1)) != 0;
    xsig = kept | (sticky ? 1 : 0);
    --exp;
  }
  return round_pack(sign, exp, xsig);
}

}  // namespace xd::fp
