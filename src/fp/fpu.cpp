#include "fp/fpu.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"

namespace xd::fp {

PipelinedUnit::PipelinedUnit(unsigned stages, Op op) : stages_(stages), op_(op) {
  require(stages >= 1, "pipelined unit needs at least one stage");
  require(op != nullptr, "pipelined unit needs an arithmetic op");
  ring_.resize(stages_ + 1);
}

void PipelinedUnit::publish(telemetry::MetricsRegistry& reg,
                            std::string_view prefix) const {
  reg.counter(cat(prefix, ".ops")).add(issued_);
  reg.counter(cat(prefix, ".cycles")).add(cycles_);
  reg.counter(cat(prefix, ".retires")).add(retired_);
  reg.gauge(cat(prefix, ".utilization")).set(utilization());
  reg.counter("fpu.issue").add(issued_);
  reg.counter("fpu.retire").add(retired_);
}

void PipelinedUnit::reset() {
  head_ = 0;
  count_ = 0;
  output_.reset();
  issued_this_cycle_ = false;
  cycles_ = 0;
  issued_ = 0;
  retired_ = 0;
}

AdderTree::AdderTree(unsigned k, unsigned stages)
    : k_(k), stages_(stages), fold_n_(active_backend().fold_n) {
  require(k >= 2 && is_pow2(k), "adder tree fan-in must be a power of two >= 2");
  levels_ = log2_floor(k);
  fold_.resize(k_);
  ring_.resize(static_cast<std::size_t>(latency()) + 1);
}

void AdderTree::reset() {
  fold_n_ = active_backend().fold_n;
  head_ = 0;
  count_ = 0;
  output_.reset();
  issued_this_cycle_ = false;
  cycles_ = 0;
  issued_ = 0;
  retired_ = 0;
}

void AdderTree::issue(const std::vector<u64>& operands, u64 tag) {
  require(operands.size() == k_,
          cat("adder tree fan-in is ", k_, ", got ", operands.size(), " operands"));
  issue(operands.data(), tag);
}

void AdderTree::publish(telemetry::MetricsRegistry& reg,
                        std::string_view prefix) const {
  reg.counter(cat(prefix, ".ops")).add(issued_);
  reg.counter(cat(prefix, ".cycles")).add(cycles_);
  reg.counter(cat(prefix, ".retires")).add(retired_);
  reg.gauge(cat(prefix, ".utilization"))
      .set(cycles_ ? static_cast<double>(issued_) / static_cast<double>(cycles_)
                   : 0.0);
  reg.gauge(cat(prefix, ".adders")).set(static_cast<double>(adders()));
  reg.counter("fpu.issue").add(issued_);
  reg.counter("fpu.retire").add(retired_);
}

MultiplierBank::MultiplierBank(unsigned width, unsigned stages)
    : width_(width), stages_(stages) {
  require(width >= 1, "multiplier bank needs at least one lane");
  require(stages >= 1, "multiplier bank needs at least one stage");
  slots_.resize(stages_ + 1);
  buffers_.resize(static_cast<std::size_t>(width_) * capacity());
}

}  // namespace xd::fp
