#include "fp/fpu.hpp"

#include <vector>

#include "telemetry/metrics.hpp"

namespace xd::fp {

PipelinedUnit::PipelinedUnit(unsigned stages, Op op) : stages_(stages), op_(op) {
  require(stages >= 1, "pipelined unit needs at least one stage");
}

void PipelinedUnit::issue(u64 a, u64 b, u64 tag) {
  if (issued_this_cycle_) {
    throw SimError("structural hazard: two issues to one FP unit in a cycle");
  }
  issued_this_cycle_ = true;
  ++issued_;
  pipe_.push_back(InFlight{op_(a, b), tag, cycles_ + stages_});
}

void PipelinedUnit::tick() {
  if (output_.has_value()) {
    throw SimError("FP unit output not consumed before next cycle");
  }
  issued_this_cycle_ = false;
  ++cycles_;
  if (!pipe_.empty() && pipe_.front().ready_cycle == cycles_) {
    output_ = FpResult{pipe_.front().bits, pipe_.front().tag};
    pipe_.pop_front();
  }
}

std::optional<FpResult> PipelinedUnit::take_output() {
  auto r = output_;
  output_.reset();
  return r;
}

void PipelinedUnit::publish(telemetry::MetricsRegistry& reg,
                            std::string_view prefix) const {
  reg.counter(cat(prefix, ".ops")).add(issued_);
  reg.counter(cat(prefix, ".cycles")).add(cycles_);
  reg.gauge(cat(prefix, ".utilization")).set(utilization());
}

void PipelinedUnit::reset() {
  pipe_.clear();
  output_.reset();
  issued_this_cycle_ = false;
  cycles_ = 0;
  issued_ = 0;
}

AdderTree::AdderTree(unsigned k, unsigned stages) : k_(k), stages_(stages) {
  require(k >= 2 && is_pow2(k), "adder tree fan-in must be a power of two >= 2");
  levels_ = log2_floor(k);
}

void AdderTree::issue(const std::vector<u64>& operands, u64 tag) {
  if (issued_this_cycle_) {
    throw SimError("structural hazard: two issues to one adder tree in a cycle");
  }
  require(operands.size() == k_,
          cat("adder tree fan-in is ", k_, ", got ", operands.size(), " operands"));
  issued_this_cycle_ = true;
  ++issued_;
  // The tree is fully pipelined, so functionally we can fold the whole vector
  // at issue time (the per-level order below matches the hardware wiring:
  // adjacent pairs at each level) and release it after levels * stages cycles.
  std::vector<u64> level = operands;
  while (level.size() > 1) {
    std::vector<u64> next(level.size() / 2);
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = fp::add(level[2 * i], level[2 * i + 1]);
    }
    level = std::move(next);
  }
  pipe_.push_back(InFlight{level[0], tag, cycles_ + latency()});
}

void AdderTree::tick() {
  if (output_.has_value()) {
    throw SimError("adder tree output not consumed before next cycle");
  }
  issued_this_cycle_ = false;
  ++cycles_;
  if (!pipe_.empty() && pipe_.front().ready_cycle == cycles_) {
    output_ = FpResult{pipe_.front().bits, pipe_.front().tag};
    pipe_.pop_front();
  }
}

std::optional<FpResult> AdderTree::take_output() {
  auto r = output_;
  output_.reset();
  return r;
}

void AdderTree::publish(telemetry::MetricsRegistry& reg,
                        std::string_view prefix) const {
  reg.counter(cat(prefix, ".ops")).add(issued_);
  reg.counter(cat(prefix, ".cycles")).add(cycles_);
  reg.gauge(cat(prefix, ".utilization"))
      .set(cycles_ ? static_cast<double>(issued_) / static_cast<double>(cycles_)
                   : 0.0);
  reg.gauge(cat(prefix, ".adders")).set(static_cast<double>(adders()));
}

}  // namespace xd::fp
