// Pluggable FP arithmetic backend: softfloat (the reference) or the host
// FPU ("native").
//
// softfloat.hpp documents that x86-64 SSE2 / AArch64 doubles are IEEE-754
// binary64 round-to-nearest-even and therefore bit-identical to the modeled
// cores for every finite computation. The native backend exploits that: it
// computes add/mul with host doubles, while the special cases whose encoding
// is architecture-dependent (NaN payload propagation, the default NaN of
// invalid operations) are pre-filtered in software to mirror softfloat's
// preamble exactly. The result is bit-identical arithmetic at native speed —
// and because engine timing never depends on operand values, cycle counts
// are unchanged too.
//
// "Bit-identical" is not assumed, it is verified: backend selection runs a
// startup conformance self-test (a hard-case vector covering subnormal
// rounding, sticky-bit ties, signed zeros, NaN payload quieting and
// overflow-to-inf, plus a seeded randomized cross-check against softfloat).
// A host that fails — x87 excess precision, FTZ/DAZ set, non-RNE rounding —
// silently falls back to softfloat. Selection is overridable with
//
//   XDBLAS_FP_BACKEND=auto    conformance-gated native (the default)
//   XDBLAS_FP_BACKEND=native  native (still conformance-gated)
//   XDBLAS_FP_BACKEND=soft    force softfloat
//
// and surfaced as the fp.backend.* telemetry gauges (see host::Runtime).
// The differential fuzz harness enforces equivalence end-to-end: every op
// kind replays bit-identically (values AND cycle counts) under both
// backends.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "fp/softfloat.hpp"

namespace xd::fp {

enum class BackendKind { Soft, Native };

inline constexpr std::string_view backend_name(BackendKind k) {
  return k == BackendKind::Soft ? "soft" : "native";
}

/// Resolved arithmetic dispatch table. Engines fetch the active table once
/// per run and call through it; pipelined units capture the ops at
/// construction (so a unit's arithmetic is fixed for its lifetime).
struct Backend {
  using Op = u64 (*)(u64, u64);
  using MulN = void (*)(const u64*, const u64*, u64*, std::size_t);
  using FoldN = u64 (*)(u64*, std::size_t);

  Op add = &fp::add;
  Op mul = &fp::mul;
  /// Batched elementwise product for the lane loops: out[i] = mul(a[i], b[i]).
  MulN mul_n = nullptr;
  /// In-place pairwise adder-tree fold over `k` (power of two) scratch words:
  /// each level adds adjacent pairs; returns the root. One indirect call per
  /// group instead of k-1 — the adds inline inside the backend.
  FoldN fold_n = nullptr;
  BackendKind kind = BackendKind::Soft;
};

// ---- native-FPU implementations -------------------------------------------
// NaN and infinity inputs are handled in software (mirroring softfloat's
// preamble), so the host FPU only ever sees finite operands — the cases
// where IEEE-754 mandates one bit pattern on every conforming host.
u64 native_add(u64 a, u64 b);
u64 native_mul(u64 a, u64 b);

/// The two canonical tables.
const Backend& soft_backend();
const Backend& native_backend();

// ---- conformance self-test -------------------------------------------------

struct ConformanceReport {
  bool passed = false;
  u64 cases = 0;              ///< checks run (hard vector + randomized)
  std::string first_failure;  ///< empty when passed
};

/// Verify `candidate` against softfloat: the hard-case vector first, then
/// `random_cases` seeded random bit patterns through both add and mul.
/// Deterministic for a fixed seed.
ConformanceReport run_conformance(const Backend& candidate,
                                  u64 random_cases = 4096, u64 seed = 2005);

// ---- selection -------------------------------------------------------------

struct BackendSelection {
  const Backend* backend = nullptr;
  std::string requested;          ///< "auto" / "native" / "soft"
  ConformanceReport conformance;  ///< cases == 0 when soft was requested
  bool fell_back = false;         ///< native wanted but conformance failed
};

/// Pure resolution for a requested mode ("auto", "native", "soft"); throws
/// ConfigError on anything else. No process state involved.
BackendSelection resolve_backend(std::string_view requested);

/// The process-wide selection, resolved once from XDBLAS_FP_BACKEND
/// (unset/empty means "auto") on first use.
const BackendSelection& backend_selection();

/// The dispatch table new engines/units pick up (the process selection,
/// unless a ScopedBackend override is live).
const Backend& active_backend();

/// Testing hook: force a backend for this object's lifetime and restore the
/// previous one on destruction. Swapping is atomic, but overrides must not
/// race with concurrently *starting* runs that expect a particular backend.
class ScopedBackend {
 public:
  explicit ScopedBackend(BackendKind kind);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const Backend* prev_;
};

}  // namespace xd::fp
