// Bit-exact IEEE-754 binary64 (double precision) arithmetic, implemented from
// scratch on 64-bit integer patterns.
//
// The paper's designs use the authors' own IEEE-754 double-precision
// floating-point adder and multiplier cores [9]. We reproduce those cores'
// *numerical* behaviour here: round-to-nearest-even, gradual underflow
// (subnormals), signed zeros, infinities and quiet-NaN propagation. The
// pipelined timing behaviour is modeled separately in fp/fpu.hpp.
//
// All operations take and return raw bit patterns (xd::u64) so that the
// simulated datapath is explicit about being a 64-bit word machine; helpers
// convert to/from native double for test comparison against the host FPU
// (x86-64 SSE2 doubles are IEEE-754 RNE, so hardware serves as the oracle).
#pragma once

#include <bit>
#include <cstdint>

#include "common/util.hpp"

namespace xd::fp {

// ---- format constants -------------------------------------------------
inline constexpr int kFracBits = 52;
inline constexpr int kExpBits = 11;
inline constexpr int kBias = 1023;
inline constexpr u64 kSignMask = 0x8000'0000'0000'0000ull;
inline constexpr u64 kExpMask = 0x7FF0'0000'0000'0000ull;
inline constexpr u64 kFracMask = 0x000F'FFFF'FFFF'FFFFull;
inline constexpr u64 kHiddenBit = 0x0010'0000'0000'0000ull;  // implicit 1.x bit
inline constexpr u64 kQuietBit = 0x0008'0000'0000'0000ull;
/// Canonical quiet NaN produced by invalid operations (matches x86 behaviour).
inline constexpr u64 kDefaultNaN = 0xFFF8'0000'0000'0000ull;
inline constexpr u64 kPosInf = 0x7FF0'0000'0000'0000ull;
inline constexpr u64 kNegInf = 0xFFF0'0000'0000'0000ull;
inline constexpr u64 kPosZero = 0x0000'0000'0000'0000ull;
inline constexpr u64 kNegZero = 0x8000'0000'0000'0000ull;

// ---- bit conversion ----------------------------------------------------
inline u64 to_bits(double d) { return std::bit_cast<u64>(d); }
inline double from_bits(u64 b) { return std::bit_cast<double>(b); }

// ---- field extraction --------------------------------------------------
inline bool sign_of(u64 b) { return (b & kSignMask) != 0; }
inline int exp_of(u64 b) { return static_cast<int>((b & kExpMask) >> kFracBits); }
inline u64 frac_of(u64 b) { return b & kFracMask; }

// ---- classification ----------------------------------------------------
inline bool is_nan(u64 b) { return exp_of(b) == 0x7FF && frac_of(b) != 0; }
inline bool is_inf(u64 b) { return exp_of(b) == 0x7FF && frac_of(b) == 0; }
inline bool is_zero(u64 b) { return (b & ~kSignMask) == 0; }
inline bool is_subnormal(u64 b) { return exp_of(b) == 0 && frac_of(b) != 0; }
inline bool is_finite(u64 b) { return exp_of(b) != 0x7FF; }

/// Quiet a signalling NaN, preserving payload (x86 semantics).
inline u64 quiet(u64 nan_bits) { return nan_bits | kQuietBit; }

// ---- arithmetic (round-to-nearest-even) ---------------------------------
/// a + b with IEEE-754 binary64 semantics.
u64 add(u64 a, u64 b);
/// a - b (implemented as a + (-b); IEEE-correct including zero signs).
u64 sub(u64 a, u64 b);
/// a * b with IEEE-754 binary64 semantics.
u64 mul(u64 a, u64 b);
/// -a (sign flip; NaN sign flips too, matching hardware negate).
inline u64 neg(u64 a) { return a ^ kSignMask; }

/// Fused compare for tests: equal bit patterns, or both NaN.
inline bool same_value(u64 a, u64 b) {
  if (is_nan(a) && is_nan(b)) return true;
  return a == b;
}

// Convenience double-typed wrappers (used by examples and reference code).
inline double addd(double a, double b) { return from_bits(add(to_bits(a), to_bits(b))); }
inline double subd(double a, double b) { return from_bits(sub(to_bits(a), to_bits(b))); }
inline double muld(double a, double b) { return from_bits(mul(to_bits(a), to_bits(b))); }

}  // namespace xd::fp
