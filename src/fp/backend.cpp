#include "fp/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace xd::fp {

// ---- native ops ------------------------------------------------------------
// The exp==0x7FF preamble mirrors fp::add / fp::mul exactly; after it the
// host FPU only sees finite operands, for which IEEE-754 RNE prescribes a
// unique bit pattern (including gradual underflow and overflow-to-inf).
// Keeping both operations out-of-line also guarantees the compiler can never
// contract a mul feeding an add into a fused multiply-add across the call
// boundary, which would skip the intermediate rounding softfloat performs.

u64 native_add(u64 a, u64 b) {
  if (((a & kExpMask) == kExpMask) | ((b & kExpMask) == kExpMask)) [[unlikely]] {
    if (is_nan(a)) return quiet(a);
    if (is_nan(b)) return quiet(b);
    if (is_inf(a)) {
      if (is_inf(b) && sign_of(a) != sign_of(b)) return kDefaultNaN;  // inf - inf
      return a;
    }
    return b;  // only b is infinite
  }
  return to_bits(from_bits(a) + from_bits(b));
}

u64 native_mul(u64 a, u64 b) {
  if (((a & kExpMask) == kExpMask) | ((b & kExpMask) == kExpMask)) [[unlikely]] {
    if (is_nan(a)) return quiet(a);
    if (is_nan(b)) return quiet(b);
    if (is_zero(a) || is_zero(b)) return kDefaultNaN;  // 0 * inf
    return ((a ^ b) & kSignMask) | kPosInf;
  }
  return to_bits(from_bits(a) * from_bits(b));
}

namespace {

void soft_mul_n(const u64* a, const u64* b, u64* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = fp::mul(a[i], b[i]);
}

// exp == 0x7FF, i.e. the operand is NaN or infinite.
inline bool is_special(u64 x) { return (~x & kExpMask) == 0; }

void native_mul_n(const u64* a, const u64* b, u64* out, std::size_t n) {
  // One batched scan instead of two branches per lane: if no operand is
  // NaN/inf, finite x finite can only produce finite results or the RNE
  // overflow-to-inf — both bit-identical on any conforming host — so the
  // whole panel multiplies branch-free (and vectorizes).
  bool special = false;
  for (std::size_t i = 0; i < n; ++i) special |= is_special(a[i]) | is_special(b[i]);
  if (special) [[unlikely]] {
    for (std::size_t i = 0; i < n; ++i) out[i] = native_mul(a[i], b[i]);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = to_bits(from_bits(a[i]) * from_bits(b[i]));
  }
}

// Pairwise tree fold, adjacent pairs per level — the AdderTree wiring. Slot i
// is written only after slots 2i and 2i+1 were read, so it runs in place.
u64 soft_fold_n(u64* scratch, std::size_t k) {
  for (std::size_t width = k; width > 1; width /= 2) {
    for (std::size_t i = 0; i < width / 2; ++i) {
      scratch[i] = fp::add(scratch[2 * i], scratch[2 * i + 1]);
    }
  }
  return scratch[0];
}

u64 native_fold_careful(u64* scratch, std::size_t k) {
  for (std::size_t width = k; width > 1; width /= 2) {
    for (std::size_t i = 0; i < width / 2; ++i) {
      scratch[i] = native_add(scratch[2 * i], scratch[2 * i + 1]);
    }
  }
  return scratch[0];
}

u64 native_fold_n(u64* scratch, std::size_t k) {
  // Fast path mirrors native_mul_n: scan the inputs once, then fold with
  // plain host adds. Unlike multiplication, two finite partial sums can
  // overflow to opposite infinities and meet at a later level (inf - inf),
  // where the host's default NaN need not match softfloat's — so the fast
  // fold also OR-tracks the exponent bits it produces and redoes the fold
  // through native_add (whose preamble handles inf/NaN exactly) from a saved
  // copy in that rare case.
  bool special = k > 64;
  for (std::size_t i = 0; i < k; ++i) special |= is_special(scratch[i]);
  if (special) [[unlikely]] {
    return native_fold_careful(scratch, k);
  }
  u64 orig[64];
  std::memcpy(orig, scratch, k * sizeof(u64));
  bool overflowed = false;
  for (std::size_t width = k; width > 1; width /= 2) {
    for (std::size_t i = 0; i < width / 2; ++i) {
      const u64 s = to_bits(from_bits(scratch[2 * i]) + from_bits(scratch[2 * i + 1]));
      scratch[i] = s;
      overflowed |= is_special(s);
    }
  }
  if (!overflowed) [[likely]] {
    return scratch[0];
  }
  std::memcpy(scratch, orig, k * sizeof(u64));
  return native_fold_careful(scratch, k);
}

}  // namespace

const Backend& soft_backend() {
  static const Backend be{&fp::add, &fp::mul, &soft_mul_n, &soft_fold_n,
                          BackendKind::Soft};
  return be;
}

const Backend& native_backend() {
  static const Backend be{&native_add, &native_mul, &native_mul_n,
                          &native_fold_n, BackendKind::Native};
  return be;
}

// ---- conformance -----------------------------------------------------------

namespace {

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Bias a raw 64-bit pattern toward the interesting exponent bands: full
/// random patterns alone almost never land on subnormals, near-overflow
/// values, or operand pairs close enough to cancel.
u64 shape_pattern(u64 raw, unsigned mode) {
  switch (mode % 4) {
    case 0:
      return raw;  // anything, incl. NaN/inf encodings
    case 1:        // subnormal / tiny: exponent field 0..2
      return (raw & (kSignMask | kFracMask)) |
             (static_cast<u64>(raw >> 52 & 0x3) << kFracBits);
    case 2: {  // near overflow: exponent 0x7FC..0x7FF
      const u64 e = 0x7FC + (raw >> 52 & 0x3);
      return (raw & (kSignMask | kFracMask)) | (e << kFracBits);
    }
    default: {  // mid-range, narrow exponent spread (cancellation-prone adds)
      const u64 e = kBias - 2 + (raw >> 52 & 0x3);
      return (raw & (kSignMask | kFracMask)) | (e << kFracBits);
    }
  }
}

struct HardCase {
  const char* what;
  u64 a, b;
};

bool check_op(const Backend& be, bool is_add, u64 a, u64 b, const char* what,
              ConformanceReport& rep) {
  ++rep.cases;
  const u64 want = is_add ? fp::add(a, b) : fp::mul(a, b);
  const u64 got = is_add ? be.add(a, b) : be.mul(a, b);
  if (got == want) return true;
  if (rep.first_failure.empty()) {
    rep.first_failure =
        cat(is_add ? "add" : "mul", "(0x", std::hex, a, ", 0x", b, ") = 0x",
            got, ", softfloat says 0x", want, " [", what, "]");
  }
  return false;
}

}  // namespace

ConformanceReport run_conformance(const Backend& candidate, u64 random_cases,
                                  u64 seed) {
  ConformanceReport rep;
  bool ok = true;

  // Named constants for readability below.
  constexpr u64 kOne = 0x3FF0'0000'0000'0000ull;        // 1.0
  constexpr u64 kMinSub = 0x0000'0000'0000'0001ull;     // smallest subnormal
  constexpr u64 kMaxSub = 0x000F'FFFF'FFFF'FFFFull;     // largest subnormal
  constexpr u64 kMinNorm = 0x0010'0000'0000'0000ull;    // smallest normal
  constexpr u64 kMaxFinite = 0x7FEF'FFFF'FFFF'FFFFull;  // DBL_MAX
  constexpr u64 kHalf = 0x3FE0'0000'0000'0000ull;       // 0.5
  constexpr u64 kSNaN = 0x7FF0'0000'0000'0001ull;       // sNaN, payload 1
  constexpr u64 kSNaNPay = 0xFFF4'0000'0000'BEEFull;    // -sNaN, big payload
  constexpr u64 kUlp = 0x3CB0'0000'0000'0000ull;        // 2^-52
  constexpr u64 kHalfUlp = 0x3CA0'0000'0000'0000ull;    // 2^-53 (exact tie)
  constexpr u64 kHalfUlpSticky = 0x3CA0'0000'0000'0001ull;  // tie + sticky

  static const HardCase kAddCases[] = {
      {"round-to-even tie (down)", kOne, kHalfUlp},
      {"round-to-even tie (up)", kOne | 1, kHalfUlp},
      {"sticky bit breaks the tie", kOne, kHalfUlpSticky},
      {"one ulp", kOne, kUlp},
      {"subnormal + subnormal", kMinSub, kMinSub},
      {"subnormal carries into normal", kMaxSub, kMinSub},
      {"gradual underflow on cancellation", kMinNorm, kMinSub | kSignMask},
      {"exact cancellation -> +0", kOne, kOne | kSignMask},
      {"(+0) + (-0) = +0", kPosZero, kNegZero},
      {"(-0) + (-0) = -0", kNegZero, kNegZero},
      {"overflow to +inf", kMaxFinite, kMaxFinite},
      {"overflow to -inf", kMaxFinite | kSignMask, kMaxFinite | kSignMask},
      {"inf - inf -> default NaN", kPosInf, kNegInf},
      {"inf + finite", kPosInf, kOne},
      {"sNaN payload quieting (a)", kSNaN, kOne},
      {"sNaN payload quieting (b)", kOne, kSNaNPay},
      {"NaN precedence: a's payload wins", kSNaN, kSNaNPay},
      {"tiny + huge (full alignment shift)", kMinSub, kMaxFinite},
  };
  static const HardCase kMulCases[] = {
      {"exact power-of-two scale", kOne | 7, kHalf},
      {"significand tie with sticky", kOne | 1, kOne | 1},
      {"subnormal x subnormal -> rounded zero", kMinSub, kMinSub},
      {"subnormal result (gradual underflow)", kMinNorm, kHalf},
      {"subnormal input x normal", kMinSub, kOne | 3},
      {"underflow with sticky rounding", kMinNorm | 0x5555, kHalf | 1},
      {"overflow to inf", kMaxFinite, kMaxFinite},
      {"overflow to -inf", kMaxFinite | kSignMask, kMaxFinite},
      {"signed zero: (-0) * x", kNegZero, kOne | 9},
      {"signed zero: (-x) * (+0)", kOne | kSignMask, kPosZero},
      {"0 * inf -> default NaN", kPosZero, kPosInf},
      {"inf * finite keeps sign", kNegInf, kOne},
      {"sNaN payload quieting (a)", kSNaN, kOne},
      {"sNaN payload quieting (b)", kHalf, kSNaNPay},
      {"NaN precedence: a's payload wins", kSNaNPay, kSNaN},
  };

  for (const auto& c : kAddCases) {
    ok &= check_op(candidate, true, c.a, c.b, c.what, rep);
    ok &= check_op(candidate, true, c.b, c.a, c.what, rep);  // commuted
  }
  for (const auto& c : kMulCases) {
    ok &= check_op(candidate, false, c.a, c.b, c.what, rep);
    ok &= check_op(candidate, false, c.b, c.a, c.what, rep);
  }

  u64 s = seed ? seed : 1;
  for (u64 i = 0; i < random_cases; ++i) {
    const u64 r0 = splitmix64(s ^ (2 * i));
    const u64 r1 = splitmix64(s ^ (2 * i + 1));
    const u64 a = shape_pattern(r0, static_cast<unsigned>(r1 >> 60));
    const u64 b = shape_pattern(r1, static_cast<unsigned>(r0 >> 60));
    ok &= check_op(candidate, true, a, b, "randomized", rep);
    ok &= check_op(candidate, false, a, b, "randomized", rep);
  }

  // Batched tree fold: must match the softfloat fold level for level.
  if (candidate.fold_n) {
    for (u64 i = 0; i < 64; ++i) {
      const std::size_t k = std::size_t{2} << (i % 4);  // 2, 4, 8, 16
      u64 ref[16], got[16];
      for (std::size_t j = 0; j < k; ++j) {
        const u64 r = splitmix64(s ^ (0x10000 + 16 * i + j));
        ref[j] = got[j] = shape_pattern(r, static_cast<unsigned>(r >> 60));
      }
      ++rep.cases;
      const u64 want = soft_fold_n(ref, k);
      const u64 have = candidate.fold_n(got, k);
      if (want != have) {
        ok = false;
        if (rep.first_failure.empty()) {
          rep.first_failure = cat("fold_n(k=", k, ") = 0x", std::hex, have,
                                  ", softfloat says 0x", want);
        }
      }
    }
  }

  rep.passed = ok;
  return rep;
}

// ---- selection -------------------------------------------------------------

namespace {

std::atomic<const Backend*>& active_ptr() {
  // Seeded lazily from backend_selection() via active_backend(); nullptr
  // means "not resolved yet".
  static std::atomic<const Backend*> ptr{nullptr};
  return ptr;
}

}  // namespace

BackendSelection resolve_backend(std::string_view requested) {
  BackendSelection sel;
  sel.requested = std::string(requested);
  if (requested == "soft") {
    sel.backend = &soft_backend();
    return sel;
  }
  require(requested == "auto" || requested == "native",
          cat("XDBLAS_FP_BACKEND must be auto, native or soft (got '",
              requested, "')"));
  sel.conformance = run_conformance(native_backend());
  if (sel.conformance.passed) {
    sel.backend = &native_backend();
  } else {
    // Even an explicit "native" falls back rather than failing the run: the
    // soft backend is always correct, and the fp.backend.* gauges (plus this
    // flag) make the downgrade observable.
    sel.backend = &soft_backend();
    sel.fell_back = true;
  }
  return sel;
}

const BackendSelection& backend_selection() {
  static const BackendSelection sel = [] {
    const char* env = std::getenv("XDBLAS_FP_BACKEND");
    return resolve_backend(env && *env ? env : "auto");
  }();
  return sel;
}

const Backend& active_backend() {
  const Backend* be = active_ptr().load(std::memory_order_acquire);
  if (!be) [[unlikely]] {
    be = backend_selection().backend;
    active_ptr().store(be, std::memory_order_release);
  }
  return *be;
}

ScopedBackend::ScopedBackend(BackendKind kind) {
  prev_ = &active_backend();  // also forces first-use resolution
  const Backend* next =
      kind == BackendKind::Native ? &native_backend() : &soft_backend();
  active_ptr().store(next, std::memory_order_release);
}

ScopedBackend::~ScopedBackend() {
  active_ptr().store(prev_, std::memory_order_release);
}

}  // namespace xd::fp
