// Cycle-accurate models of deeply pipelined floating-point units.
//
// The paper's 64-bit cores (Table 2): adder with 14 pipeline stages,
// multiplier with 11 stages, both at 170 MHz on a Virtex-II Pro. What matters
// for the architectures built on top (reduction circuit, GEMV column design,
// GEMM PE array) is the *hazard structure*: a result issued at cycle t is
// available at cycle t + stages, and one new operation can be issued every
// cycle. These classes model exactly that, computing the numeric result
// bit-exactly (fp/softfloat) at issue time and releasing it after the
// configured latency.
//
// A `tag` travels with every operation so the surrounding architecture can
// route results (e.g. which reduction-set or which C-element an addition
// belongs to) without keeping side tables.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/util.hpp"
#include "fp/softfloat.hpp"

namespace xd::telemetry {
class MetricsRegistry;
}

namespace xd::fp {

/// Default pipeline depths from Table 2 of the paper.
inline constexpr unsigned kAdderStages = 14;
inline constexpr unsigned kMultiplierStages = 11;

/// Result emerging from a pipelined unit.
struct FpResult {
  u64 bits = 0;   ///< IEEE-754 binary64 pattern
  u64 tag = 0;    ///< caller-supplied routing tag
};

/// A generic in-order, fully pipelined 2-operand FP unit.
///
/// Usage per simulated cycle:
///   1. optionally call issue(a, b, tag)   (at most once — one issue port)
///   2. call tick()                         (advances the pipeline one cycle)
///   3. call take_output()                  (result issued `stages` ticks ago)
///
/// The unit never stalls internally; back-pressure is the caller's problem
/// (exactly as for the real cores).
class PipelinedUnit {
 public:
  using Op = u64 (*)(u64, u64);

  PipelinedUnit(unsigned stages, Op op);

  /// Issue one operation this cycle. Throws SimError on double issue within
  /// the same cycle (a structural hazard in the surrounding design).
  void issue(u64 a, u64 b, u64 tag = 0);

  /// Advance one clock cycle.
  void tick();

  /// Result that completed this cycle, if any. Must be consumed before the
  /// next tick(); unconsumed results indicate a design bug and throw.
  std::optional<FpResult> take_output();

  unsigned stages() const { return stages_; }
  u64 cycles() const { return cycles_; }
  u64 ops_issued() const { return issued_; }
  /// Fraction of elapsed cycles with an issue (pipeline utilization).
  double utilization() const {
    return cycles_ ? static_cast<double>(issued_) / static_cast<double>(cycles_) : 0.0;
  }
  /// True if any operation is still in flight.
  bool busy() const { return !pipe_.empty(); }

  /// Snapshot this unit's counters into `reg` under `<prefix>.`: ops and
  /// cycles (counters), utilization (gauge). Counters accumulate across
  /// repeated publishes (e.g. one per solver iteration).
  void publish(telemetry::MetricsRegistry& reg, std::string_view prefix) const;

  void reset();

 private:
  struct InFlight {
    u64 bits;
    u64 tag;
    u64 ready_cycle;  // cycle count after whose tick() the result appears
  };

  unsigned stages_;
  Op op_;
  std::deque<InFlight> pipe_;
  std::optional<FpResult> output_;
  bool issued_this_cycle_ = false;
  u64 cycles_ = 0;
  u64 issued_ = 0;
};

/// Pipelined IEEE-754 binary64 adder (default 14 stages per Table 2).
class PipelinedAdder : public PipelinedUnit {
 public:
  explicit PipelinedAdder(unsigned stages = kAdderStages)
      : PipelinedUnit(stages, &fp::add) {}
};

/// Pipelined IEEE-754 binary64 multiplier (default 11 stages per Table 2).
class PipelinedMultiplier : public PipelinedUnit {
 public:
  explicit PipelinedMultiplier(unsigned stages = kMultiplierStages)
      : PipelinedUnit(stages, &fp::mul) {}
};

/// A balanced binary tree of k-1 pipelined adders reducing k inputs per cycle
/// to one output per cycle (used by the dot-product and row-major GEMV
/// architectures). k must be a power of two >= 2. Latency through the tree is
/// lg(k) * stages cycles; the tree is fully pipelined.
class AdderTree {
 public:
  AdderTree(unsigned k, unsigned stages = kAdderStages);

  /// Feed one vector of k operands (bits) this cycle; `tag` travels through.
  void issue(const std::vector<u64>& operands, u64 tag = 0);

  void tick();
  std::optional<FpResult> take_output();

  unsigned fan_in() const { return k_; }
  unsigned adders() const { return k_ - 1; }
  unsigned levels() const { return levels_; }
  unsigned latency() const { return levels_ * stages_; }
  u64 cycles() const { return cycles_; }
  u64 ops_issued() const { return issued_; }

  /// Snapshot into `reg` under `<prefix>.`: ops, cycles (counters),
  /// utilization (gauge), adders (gauge, k-1 physical units).
  void publish(telemetry::MetricsRegistry& reg, std::string_view prefix) const;

 private:
  struct InFlight {
    u64 bits;
    u64 tag;
    u64 ready_cycle;
  };
  unsigned k_;
  unsigned stages_;
  unsigned levels_;
  std::deque<InFlight> pipe_;
  std::optional<FpResult> output_;
  bool issued_this_cycle_ = false;
  u64 cycles_ = 0;
  u64 issued_ = 0;
};

}  // namespace xd::fp
