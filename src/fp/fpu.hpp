// Cycle-accurate models of deeply pipelined floating-point units.
//
// The paper's 64-bit cores (Table 2): adder with 14 pipeline stages,
// multiplier with 11 stages, both at 170 MHz on a Virtex-II Pro. What matters
// for the architectures built on top (reduction circuit, GEMV column design,
// GEMM PE array) is the *hazard structure*: a result issued at cycle t is
// available at cycle t + stages, and one new operation can be issued every
// cycle. These classes model exactly that, computing the numeric result
// bit-exactly (fp/backend: conformance-verified native FPU, or softfloat) at
// issue time and releasing it after the configured latency.
//
// A `tag` travels with every operation so the surrounding architecture can
// route results (e.g. which reduction-set or which C-element an addition
// belongs to) without keeping side tables.
//
// Timing is structural, never value-dependent: latencies depend only on the
// stage counts, so swapping the arithmetic backend cannot change any cycle
// count. The in-flight windows are bounded by the pipeline depth (at most one
// issue per cycle, every result retires after exactly `stages` ticks), which
// is why the queues below are fixed rings instead of deques — the steady
// state allocates nothing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/util.hpp"
#include "fp/backend.hpp"

namespace xd::telemetry {
class MetricsRegistry;
}

namespace xd::fp {

/// Default pipeline depths from Table 2 of the paper.
inline constexpr unsigned kAdderStages = 14;
inline constexpr unsigned kMultiplierStages = 11;

/// Result emerging from a pipelined unit.
struct FpResult {
  u64 bits = 0;   ///< IEEE-754 binary64 pattern
  u64 tag = 0;    ///< caller-supplied routing tag
};

/// A generic in-order, fully pipelined 2-operand FP unit.
///
/// Usage per simulated cycle:
///   1. optionally call issue(a, b, tag)   (at most once — one issue port)
///   2. call tick()                         (advances the pipeline one cycle)
///   3. call take_output()                  (result issued `stages` ticks ago)
///
/// The unit never stalls internally; back-pressure is the caller's problem
/// (exactly as for the real cores).
class PipelinedUnit {
 public:
  using Op = u64 (*)(u64, u64);

  PipelinedUnit(unsigned stages, Op op);

  /// Issue one operation this cycle. Throws SimError on double issue within
  /// the same cycle (a structural hazard in the surrounding design).
  /// Inline (as are tick/take_output below): these run every simulated
  /// cycle, so the call overhead itself was measurable.
  void issue(u64 a, u64 b, u64 tag = 0) {
    if (issued_this_cycle_) {
      throw SimError("structural hazard: two issues to one FP unit in a cycle");
    }
    if (count_ == ring_.size()) {
      throw SimError("FP unit ring overflow (more in flight than stages)");
    }
    issued_this_cycle_ = true;
    ++issued_;
    // head_ + count_ < 2 * size, so one conditional subtract wraps (avoids an
    // integer division in the per-cycle hot path; size is not a power of two).
    std::size_t slot = head_ + count_;
    if (slot >= ring_.size()) slot -= ring_.size();
    ring_[slot] = InFlight{op_(a, b), tag, cycles_ + stages_};
    ++count_;
  }

  /// Advance one clock cycle.
  void tick() {
    if (output_.has_value()) {
      throw SimError("FP unit output not consumed before next cycle");
    }
    issued_this_cycle_ = false;
    ++cycles_;
    if (count_ != 0 && ring_[head_].ready_cycle == cycles_) {
      output_ = FpResult{ring_[head_].bits, ring_[head_].tag};
      if (++head_ == ring_.size()) head_ = 0;
      --count_;
      ++retired_;
    }
  }

  /// Advance `n` idle cycles at once (no issues in the window). A result may
  /// complete only on the final cycle; a retire strictly inside the window
  /// would be silently skipped, so that throws SimError. Callers batch the
  /// stretches where the unit is known to be draining or empty.
  void tick_n(u64 n) {
    if (n == 0) return;
    if (output_.has_value()) {
      throw SimError("FP unit output not consumed before next cycle");
    }
    issued_this_cycle_ = false;
    if (count_ != 0 && ring_[head_].ready_cycle < cycles_ + n) {
      throw SimError("tick_n window would skip an FP unit retire");
    }
    cycles_ += n;
    if (count_ != 0 && ring_[head_].ready_cycle == cycles_) {
      output_ = FpResult{ring_[head_].bits, ring_[head_].tag};
      if (++head_ == ring_.size()) head_ = 0;
      --count_;
      ++retired_;
    }
  }

  /// Cycles until the oldest in-flight result completes (0 when one is due
  /// now or nothing is in flight) — the safe argument for tick_n.
  u64 cycles_until_output() const {
    return count_ ? ring_[head_].ready_cycle - cycles_ : 0;
  }

  /// Result that completed this cycle, if any. Must be consumed before the
  /// next tick(); unconsumed results indicate a design bug and throw.
  std::optional<FpResult> take_output() {
    auto r = output_;
    output_.reset();
    return r;
  }

  unsigned stages() const { return stages_; }
  u64 cycles() const { return cycles_; }
  u64 ops_issued() const { return issued_; }
  u64 ops_retired() const { return retired_; }
  /// Fraction of elapsed cycles with an issue (pipeline utilization).
  double utilization() const {
    return cycles_ ? static_cast<double>(issued_) / static_cast<double>(cycles_) : 0.0;
  }
  /// True if any operation is still in flight.
  bool busy() const { return count_ != 0; }

  /// Snapshot this unit's counters into `reg` under `<prefix>.`: ops, cycles
  /// and retires (counters), utilization (gauge), plus the registry-wide
  /// fpu.issue / fpu.retire totals. Counters accumulate across repeated
  /// publishes (e.g. one per solver iteration).
  void publish(telemetry::MetricsRegistry& reg, std::string_view prefix) const;

  void reset();

 private:
  struct InFlight {
    u64 bits;
    u64 tag;
    u64 ready_cycle;  // cycle count after whose tick() the result appears
  };

  unsigned stages_;
  Op op_;
  // Fixed ring: with one issue per cycle and a fixed latency of `stages`
  // ticks, at most `stages` operations are ever in flight.
  std::vector<InFlight> ring_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::optional<FpResult> output_;
  bool issued_this_cycle_ = false;
  u64 cycles_ = 0;
  u64 issued_ = 0;
  u64 retired_ = 0;
};

/// Pipelined IEEE-754 binary64 adder (default 14 stages per Table 2).
/// Arithmetic comes from the active backend at construction time.
class PipelinedAdder : public PipelinedUnit {
 public:
  explicit PipelinedAdder(unsigned stages = kAdderStages)
      : PipelinedUnit(stages, active_backend().add) {}
};

/// Pipelined IEEE-754 binary64 multiplier (default 11 stages per Table 2).
class PipelinedMultiplier : public PipelinedUnit {
 public:
  explicit PipelinedMultiplier(unsigned stages = kMultiplierStages)
      : PipelinedUnit(stages, active_backend().mul) {}
};

/// A balanced binary tree of k-1 pipelined adders reducing k inputs per cycle
/// to one output per cycle (used by the dot-product and row-major GEMV
/// architectures). k must be a power of two >= 2. Latency through the tree is
/// lg(k) * stages cycles; the tree is fully pipelined.
class AdderTree {
 public:
  AdderTree(unsigned k, unsigned stages = kAdderStages);

  /// Feed one vector of k operands (bits) this cycle; `tag` travels through.
  /// Inline for the same reason as PipelinedUnit: one call per cycle.
  void issue(const u64* operands, u64 tag = 0) {
    if (issued_this_cycle_) {
      throw SimError("structural hazard: two issues to one adder tree in a cycle");
    }
    if (count_ == ring_.size()) {
      throw SimError("adder tree ring overflow (more in flight than latency)");
    }
    issued_this_cycle_ = true;
    ++issued_;
    // The tree is fully pipelined, so functionally we can fold the whole
    // vector at issue time (the backend's fold_n applies the hardware wiring:
    // adjacent pairs at each level, in place over the scratch buffer) and
    // release it after levels * stages cycles.
    std::copy(operands, operands + k_, fold_.data());
    const u64 root = fold_n_(fold_.data(), k_);
    std::size_t slot = head_ + count_;
    if (slot >= ring_.size()) slot -= ring_.size();
    ring_[slot] = InFlight{root, tag, cycles_ + latency()};
    ++count_;
  }
  void issue(const std::vector<u64>& operands, u64 tag = 0);

  void tick() {
    if (output_.has_value()) {
      throw SimError("adder tree output not consumed before next cycle");
    }
    issued_this_cycle_ = false;
    ++cycles_;
    if (count_ != 0 && ring_[head_].ready_cycle == cycles_) {
      output_ = FpResult{ring_[head_].bits, ring_[head_].tag};
      if (++head_ == ring_.size()) head_ = 0;
      --count_;
      ++retired_;
    }
  }
  std::optional<FpResult> take_output() {
    auto r = output_;
    output_.reset();
    return r;
  }

  unsigned fan_in() const { return k_; }
  unsigned adders() const { return k_ - 1; }
  unsigned levels() const { return levels_; }
  unsigned latency() const { return levels_ * stages_; }
  u64 cycles() const { return cycles_; }
  u64 ops_issued() const { return issued_; }
  u64 ops_retired() const { return retired_; }

  /// Snapshot into `reg` under `<prefix>.`: ops, cycles, retires (counters),
  /// utilization (gauge), adders (gauge, k-1 physical units), plus the
  /// registry-wide fpu.issue / fpu.retire totals.
  void publish(telemetry::MetricsRegistry& reg, std::string_view prefix) const;

  /// Back to the just-constructed state, keeping the ring storage and
  /// re-capturing the active backend's fold (the recycled engine-scratch
  /// path reuses one tree across runs, possibly across backend switches).
  void reset();

 private:
  struct InFlight {
    u64 bits;
    u64 tag;
    u64 ready_cycle;
  };
  unsigned k_;
  unsigned stages_;
  unsigned levels_;
  Backend::FoldN fold_n_;
  std::vector<u64> fold_;  // scratch for the per-level pairwise fold
  std::vector<InFlight> ring_;  // capacity latency()+1, see PipelinedUnit
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::optional<FpResult> output_;
  bool issued_this_cycle_ = false;
  u64 cycles_ = 0;
  u64 issued_ = 0;
  u64 retired_ = 0;
};

/// `width` multipliers running in lockstep: one k-wide group of products may
/// be staged per cycle, and the whole group emerges `stages` cycles later —
/// the shared feeder for the tree-based engines (dot, row-major GEMV, SpMXV,
/// node GEMV). The bank owns a ring of preallocated group buffers, so the
/// steady-state lane loop performs no allocation:
///
///   if (auto g = bank.pop_ready(cycle)) tree.issue(g->products, ...);
///   ...
///   u64* buf = bank.stage(cycle, last);     // pre-zeroed width-slot buffer
///   backend.mul_n(apanel, xpanel, buf, lanes);
///
/// A popped group's buffer stays valid until `stages`+1 further stage()
/// calls, far longer than the consume-in-same-cycle the engines need.
class MultiplierBank {
 public:
  MultiplierBank(unsigned width, unsigned stages);

  struct Group {
    const u64* products;  ///< `width` finished product slots
    bool last;            ///< caller's last-of-set flag, carried through
  };

  /// Stage the group issued this cycle; at most one per cycle. Returns the
  /// group's raw buffer: the caller fills all `width` slots (padding partial
  /// tail groups with +0 itself -- the bank does not pre-zero).
  u64* stage(u64 current_cycle, bool last) {
    if (count_ == capacity()) {
      throw SimError("multiplier bank ring overflow (more in flight than stages)");
    }
    std::size_t slot = head_ + count_;
    if (slot >= capacity()) slot -= capacity();
    slots_[slot] = Slot{last, current_cycle + stages_};
    ++count_;
    ++issued_;
    return buffers_.data() + slot * width_;
  }

  /// The group staged `stages` cycles ago, if any.
  std::optional<Group> pop_ready(u64 current_cycle) {
    if (count_ == 0 || slots_[head_].ready_cycle != current_cycle) {
      return std::nullopt;
    }
    Group g{buffers_.data() + head_ * width_, slots_[head_].last};
    if (++head_ == capacity()) head_ = 0;
    --count_;
    return g;
  }

  unsigned width() const { return width_; }
  unsigned stages() const { return stages_; }
  bool empty() const { return count_ == 0; }
  u64 groups_issued() const { return issued_; }

  /// Back to the just-constructed state, keeping the group buffers.
  void reset() {
    head_ = 0;
    count_ = 0;
    issued_ = 0;
  }

 private:
  struct Slot {
    bool last;
    u64 ready_cycle;
  };
  unsigned width_;
  unsigned stages_;
  std::vector<u64> buffers_;  // capacity() slices of `width` words each
  std::vector<Slot> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  u64 issued_ = 0;

  std::size_t capacity() const { return slots_.size(); }
};

}  // namespace xd::fp
