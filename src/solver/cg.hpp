// Conjugate-gradient solver on the simulated FPGA BLAS (the iterative method
// the paper's Sec 7 positions its building blocks under). Each iteration runs
// one GEMV and three dot products on the FPGA engines; vector updates stay on
// the host processor. Optionally Jacobi-preconditioned (diagonal scaling),
// the exact pairing the paper describes for its Jacobi design.
#pragma once

#include <cstddef>
#include <vector>

#include "host/context.hpp"
#include "solver/jacobi.hpp"  // SolveOptions / SolveResult

namespace xd::solver {

/// Dense CG for symmetric positive definite A (row-major n x n).
/// `jacobi_precondition` applies the D^{-1} preconditioner.
SolveResult cg_dense(const host::Context& ctx, const std::vector<double>& a,
                     std::size_t n, const std::vector<double>& b,
                     const SolveOptions& opts = {},
                     bool jacobi_precondition = false);

}  // namespace xd::solver
