#include "solver/cg.hpp"

#include <cmath>

namespace xd::solver {

SolveResult cg_dense(const host::Context& ctx, const std::vector<double>& a,
                     std::size_t n, const std::vector<double>& b,
                     const SolveOptions& opts, bool jacobi_precondition) {
  require(a.size() == n * n && b.size() == n, "cg_dense: size mismatch");

  std::vector<double> dinv(n, 1.0);
  if (jacobi_precondition) {
    for (std::size_t i = 0; i < n; ++i) {
      require(a[i * n + i] != 0.0, "cg_dense: zero diagonal for preconditioner");
      dinv[i] = 1.0 / a[i * n + i];
    }
  }

  SolveResult res;
  res.x.assign(n, 0.0);
  res.clock_mhz = ctx.config().gemv_clock_mhz;

  auto absorb_dot = [&](const host::Outcome& out) {
    // Normalize the dot design's cycles (its own clock) into GEMV-clock
    // cycles so the aggregate uses one clock domain.
    res.fpga_cycles += static_cast<u64>(
        static_cast<double>(out.report.cycles) * res.clock_mhz /
        out.report.clock_mhz);
    res.fpga_flops += out.report.flops;
    return out.values.at(0);
  };
  auto absorb_saved = [&](const host::GraphOutcome& go) {
    // GraphOutcome savings are in the graph's node-0 clock domain.
    res.staging_saved_cycles += static_cast<u64>(
        static_cast<double>(go.staging_saved_cycles) * res.clock_mhz /
        go.report.clock_mhz);
  };
  // The step's GEMV and the p . Ap dot run as one fused graph: ap streams
  // into the dot's second slot over an SRAM forwarding bank instead of
  // round-tripping through DRAM, and p stays chain-resident from the
  // GEMV's x (all of it moot under Placement::Sram, where nothing stages).
  // Node outcomes are bit-identical to per-op execution, so the cycle
  // accounting below matches the historical per-op arithmetic exactly.
  auto fpga_gemv_dot = [&](const std::vector<double>& v) {
    host::GraphDesc g;
    g.nodes.push_back(
        {"ap", host::OpDesc::gemv(a, n, n, v, opts.placement), true});
    host::OpDesc pap;
    pap.kind = host::OpKind::Dot;
    pap.placement = opts.placement;
    pap.cols = n;
    pap.a = &v;  // b is edge-fed from the GEMV
    g.nodes.push_back({"pap", pap, true});
    g.edges.push_back({0, 1, host::OperandSlot::B});
    auto go = ctx.runtime().run_graph(g);
    res.fpga_cycles += go.nodes[0].report.cycles;
    res.fpga_flops += go.nodes[0].report.flops;
    const double p_ap = absorb_dot(go.nodes[1]);
    absorb_saved(go);
    return std::pair<std::vector<double>, double>{
        std::move(go.nodes[0].values), p_ap};
  };
  // The two dots of each step are independent; as a two-node edgeless graph
  // they share the chain-resident r, staging it once under Dram placement.
  auto fpga_dot2 = [&](const std::vector<double>& u1,
                       const std::vector<double>& v1,
                       const std::vector<double>& u2,
                       const std::vector<double>& v2) {
    host::GraphDesc g;
    g.nodes.push_back({"d0", host::OpDesc::dot(u1, v1, opts.placement), true});
    g.nodes.push_back({"d1", host::OpDesc::dot(u2, v2, opts.placement), true});
    auto go = ctx.runtime().run_graph(g);
    absorb_saved(go);
    return std::pair<double, double>{absorb_dot(go.nodes[0]),
                                     absorb_dot(go.nodes[1])};
  };

  std::vector<double> r = b;  // x0 = 0
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = dinv[i] * r[i];
  std::vector<double> p = z;
  auto [rz_old, rr] = fpga_dot2(r, z, r, r);
  res.residual_norm = std::sqrt(rr);

  for (res.iterations = 0; res.iterations < opts.max_iterations;
       ++res.iterations) {
    if (res.residual_norm <= opts.tolerance) {
      res.converged = true;
      break;
    }
    const auto [ap, p_ap] = fpga_gemv_dot(p);
    require(p_ap != 0.0, "cg_dense: breakdown (A not SPD?)");
    const double alpha = rz_old / p_ap;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = dinv[i] * r[i];
    const auto [rz_new, rr_new] = fpga_dot2(r, z, r, r);
    res.residual_norm = std::sqrt(rr_new);
    const double beta = rz_new / rz_old;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rz_old = rz_new;
  }
  return res;
}

}  // namespace xd::solver
