#include "solver/cg.hpp"

#include <cmath>

namespace xd::solver {

SolveResult cg_dense(const host::Context& ctx, const std::vector<double>& a,
                     std::size_t n, const std::vector<double>& b,
                     const SolveOptions& opts, bool jacobi_precondition) {
  require(a.size() == n * n && b.size() == n, "cg_dense: size mismatch");

  std::vector<double> dinv(n, 1.0);
  if (jacobi_precondition) {
    for (std::size_t i = 0; i < n; ++i) {
      require(a[i * n + i] != 0.0, "cg_dense: zero diagonal for preconditioner");
      dinv[i] = 1.0 / a[i * n + i];
    }
  }

  SolveResult res;
  res.x.assign(n, 0.0);
  res.clock_mhz = ctx.config().gemv_clock_mhz;

  auto fpga_gemv = [&](const std::vector<double>& v) {
    auto out = ctx.gemv(a, n, n, v);
    res.fpga_cycles += out.report.cycles;
    res.fpga_flops += out.report.flops;
    return out.y;
  };
  auto fpga_dot = [&](const std::vector<double>& u, const std::vector<double>& v) {
    auto out = ctx.dot(u, v);
    // Normalize the dot design's cycles (its own clock) into GEMV-clock
    // cycles so the aggregate uses one clock domain.
    res.fpga_cycles += static_cast<u64>(
        static_cast<double>(out.report.cycles) * res.clock_mhz /
        out.report.clock_mhz);
    res.fpga_flops += out.report.flops;
    return out.value;
  };

  std::vector<double> r = b;  // x0 = 0
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = dinv[i] * r[i];
  std::vector<double> p = z;
  double rz_old = fpga_dot(r, z);
  res.residual_norm = std::sqrt(fpga_dot(r, r));

  for (res.iterations = 0; res.iterations < opts.max_iterations;
       ++res.iterations) {
    if (res.residual_norm <= opts.tolerance) {
      res.converged = true;
      break;
    }
    const auto ap = fpga_gemv(p);
    const double p_ap = fpga_dot(p, ap);
    require(p_ap != 0.0, "cg_dense: breakdown (A not SPD?)");
    const double alpha = rz_old / p_ap;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = dinv[i] * r[i];
    const double rz_new = fpga_dot(r, z);
    res.residual_norm = std::sqrt(fpga_dot(r, r));
    const double beta = rz_new / rz_old;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rz_old = rz_new;
  }
  return res;
}

}  // namespace xd::solver
