#include "solver/cg.hpp"

#include <cmath>

namespace xd::solver {

SolveResult cg_dense(const host::Context& ctx, const std::vector<double>& a,
                     std::size_t n, const std::vector<double>& b,
                     const SolveOptions& opts, bool jacobi_precondition) {
  require(a.size() == n * n && b.size() == n, "cg_dense: size mismatch");

  std::vector<double> dinv(n, 1.0);
  if (jacobi_precondition) {
    for (std::size_t i = 0; i < n; ++i) {
      require(a[i * n + i] != 0.0, "cg_dense: zero diagonal for preconditioner");
      dinv[i] = 1.0 / a[i * n + i];
    }
  }

  SolveResult res;
  res.x.assign(n, 0.0);
  res.clock_mhz = ctx.config().gemv_clock_mhz;

  auto fpga_gemv = [&](const std::vector<double>& v) {
    auto out = ctx.gemv(a, n, n, v);
    res.fpga_cycles += out.report.cycles;
    res.fpga_flops += out.report.flops;
    return out.y;
  };
  auto absorb_dot = [&](const host::Outcome& out) {
    // Normalize the dot design's cycles (its own clock) into GEMV-clock
    // cycles so the aggregate uses one clock domain.
    res.fpga_cycles += static_cast<u64>(
        static_cast<double>(out.report.cycles) * res.clock_mhz /
        out.report.clock_mhz);
    res.fpga_flops += out.report.flops;
    return out.values.at(0);
  };
  // The two dots of each step are independent of one another, so they go
  // through the runtime as one concurrent batch (numerics and cycle counts
  // are identical to sequential calls — each job simulates on its own).
  auto fpga_dot2 = [&](const std::vector<double>& u1,
                       const std::vector<double>& v1,
                       const std::vector<double>& u2,
                       const std::vector<double>& v2) {
    const auto outs = ctx.runtime().run_batch(
        {host::OpDesc::dot(u1, v1), host::OpDesc::dot(u2, v2)});
    return std::pair<double, double>{absorb_dot(outs[0]), absorb_dot(outs[1])};
  };

  std::vector<double> r = b;  // x0 = 0
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = dinv[i] * r[i];
  std::vector<double> p = z;
  auto [rz_old, rr] = fpga_dot2(r, z, r, r);
  res.residual_norm = std::sqrt(rr);

  for (res.iterations = 0; res.iterations < opts.max_iterations;
       ++res.iterations) {
    if (res.residual_norm <= opts.tolerance) {
      res.converged = true;
      break;
    }
    const auto ap = fpga_gemv(p);
    const double p_ap =
        absorb_dot(ctx.runtime().run(host::OpDesc::dot(p, ap)));
    require(p_ap != 0.0, "cg_dense: breakdown (A not SPD?)");
    const double alpha = rz_old / p_ap;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = dinv[i] * r[i];
    const auto [rz_new, rr_new] = fpga_dot2(r, z, r, r);
    res.residual_norm = std::sqrt(rr_new);
    const double beta = rz_new / rz_old;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    rz_old = rz_new;
  }
  return res;
}

}  // namespace xd::solver
