#include "solver/jacobi.hpp"

#include <cmath>

#include "host/reference.hpp"

namespace xd::solver {

namespace {

double l2_residual(const std::vector<double>& ax, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const double d = ax[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace

SolveResult jacobi_dense(const host::Context& ctx, const std::vector<double>& a,
                         std::size_t n, const std::vector<double>& b,
                         const SolveOptions& opts) {
  require(a.size() == n * n && b.size() == n, "jacobi_dense: size mismatch");

  // Split A = D + R on the host once.
  std::vector<double> r = a;
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = a[i * n + i];
    require(diag[i] != 0.0, "jacobi_dense: zero diagonal entry");
    r[i * n + i] = 0.0;
  }

  SolveResult res;
  res.x.assign(n, 0.0);
  // Every sweep runs the same shape (R is n x n throughout): resolve the
  // plan once and pass the pinned handle to each run, skipping the
  // per-iteration cache probe and keeping the plan safe from eviction by
  // unrelated traffic on a shared runtime. Outcomes are identical either
  // way — the handle only short-circuits the probe.
  const host::PlanHandle plan = ctx.runtime().pin_plan(
      host::OpDesc::gemv(r, n, n, res.x, opts.placement));
  for (res.iterations = 0; res.iterations < opts.max_iterations;
       ++res.iterations) {
    const auto rx = ctx.runtime().run(
        host::OpDesc::gemv(r, n, n, res.x, opts.placement), plan);
    res.fpga_cycles += rx.report.cycles;
    res.fpga_flops += rx.report.flops;
    res.clock_mhz = rx.report.clock_mhz;
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i)
      next[i] = (b[i] - rx.values[i]) / diag[i];
    res.x.swap(next);

    res.residual_norm = l2_residual(host::ref_gemv(a, n, n, res.x), b);
    if (res.residual_norm <= opts.tolerance) {
      res.converged = true;
      ++res.iterations;
      break;
    }
  }
  return res;
}

std::vector<SolveResult> jacobi_dense_batch(
    const host::Context& ctx, const std::vector<double>& a, std::size_t n,
    const std::vector<std::vector<double>>& bs, const SolveOptions& opts) {
  require(a.size() == n * n, "jacobi_dense_batch: size mismatch");
  for (const auto& b : bs) {
    require(b.size() == n, "jacobi_dense_batch: size mismatch");
  }

  // Split A = D + R on the host once, shared by every system.
  std::vector<double> r = a;
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = a[i * n + i];
    require(diag[i] != 0.0, "jacobi_dense_batch: zero diagonal entry");
    r[i * n + i] = 0.0;
  }

  std::vector<SolveResult> res(bs.size());
  for (auto& s : res) s.x.assign(n, 0.0);

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // One R x per unconverged system, as a single fused sweep graph: every
    // node is a GEMV against the same R, so under Placement::Dram the
    // chain stages R once for the whole sweep instead of once per system
    // (per-node values and compute cycles stay bit-identical to per-op
    // execution; under Sram nothing stages and the outcomes match the old
    // run_batch path exactly).
    std::vector<std::size_t> active;
    host::GraphDesc g;
    for (std::size_t s = 0; s < bs.size(); ++s) {
      if (res[s].converged) continue;
      active.push_back(s);
      g.nodes.push_back({cat("sys", s),
                         host::OpDesc::gemv(r, n, n, res[s].x, opts.placement),
                         true});
    }
    if (active.empty()) break;
    auto go = ctx.runtime().run_graph(g);

    for (std::size_t j = 0; j < active.size(); ++j) {
      SolveResult& sr = res[active[j]];
      const auto& rx = go.nodes[j];
      sr.fpga_cycles += rx.report.cycles;
      sr.fpga_flops += rx.report.flops;
      sr.staging_saved_cycles += go.node_staging_saved[j];
      sr.clock_mhz = rx.report.clock_mhz;
      ++sr.iterations;
      const std::vector<double>& b = bs[active[j]];
      std::vector<double> next(n);
      for (std::size_t i = 0; i < n; ++i) {
        next[i] = (b[i] - rx.values[i]) / diag[i];
      }
      sr.x.swap(next);

      sr.residual_norm = l2_residual(host::ref_gemv(a, n, n, sr.x), b);
      if (sr.residual_norm <= opts.tolerance) sr.converged = true;
    }
  }
  return res;
}

SolveResult jacobi_sparse(const blas2::CrsMatrix& a, const std::vector<double>& b,
                          const SolveOptions& opts,
                          const blas2::SpmxvConfig& cfg) {
  a.validate();
  require(a.rows == a.cols && b.size() == a.rows, "jacobi_sparse: size mismatch");
  const std::size_t n = a.rows;

  // Split into diagonal and off-diagonal CRS parts.
  blas2::CrsMatrix r;
  r.rows = r.cols = n;
  r.row_ptr.push_back(0);
  std::vector<double> diag(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = a.row_ptr[i]; e < a.row_ptr[i + 1]; ++e) {
      if (a.col_idx[e] == i) {
        diag[i] = a.values[e];
      } else {
        r.values.push_back(a.values[e]);
        r.col_idx.push_back(a.col_idx[e]);
      }
    }
    r.row_ptr.push_back(r.values.size());
    require(diag[i] != 0.0, "jacobi_sparse: missing/zero diagonal entry");
  }

  blas2::SpmxvEngine engine(cfg);
  const auto dense_a = a.to_dense();  // residual checks only

  SolveResult res;
  res.x.assign(n, 0.0);
  for (res.iterations = 0; res.iterations < opts.max_iterations;
       ++res.iterations) {
    const auto rx = engine.run(r, res.x);
    res.fpga_cycles += rx.report.cycles;
    res.fpga_flops += rx.report.flops;
    res.clock_mhz = rx.report.clock_mhz;
    std::vector<double> next(n);
    for (std::size_t i = 0; i < n; ++i) next[i] = (b[i] - rx.y[i]) / diag[i];
    res.x.swap(next);

    res.residual_norm = l2_residual(host::ref_gemv(dense_a, n, n, res.x), b);
    if (res.residual_norm <= opts.tolerance) {
      res.converged = true;
      ++res.iterations;
      break;
    }
  }
  return res;
}

}  // namespace xd::solver
