// FPGA-accelerated Jacobi iterative solver (the paper's companion design
// [18], built on the GEMV/SpMXV architectures; Sec 7 positions it as the
// preconditioner building block for methods like conjugate gradient).
//
// Iteration: x_{k+1} = D^{-1} (b - R x_k). The R x products run on the
// simulated FPGA engines (dense tree GEMV, or SpMXV for CRS matrices — the
// irregular-structure case where the paper reports large speedups); the
// diagonal scale runs on the host processor, matching the reconfigurable-
// system work split.
#pragma once

#include <cstddef>
#include <vector>

#include "blas2/spmxv.hpp"
#include "host/context.hpp"

namespace xd::solver {

struct SolveOptions {
  int max_iterations = 500;
  double tolerance = 1e-10;  ///< on ||b - A x||_2
  /// Where each iteration's FPGA op operands live. Sram (the default)
  /// matches the historical behavior exactly — no staging either way.
  /// Dram charges DRAM staging per op, and the fused graph plans the
  /// solvers now run on (CG's GEMV->DOT step chain, Jacobi's shared-R
  /// sweep) recover most of it; the recovered cycles are reported in
  /// SolveResult::staging_saved_cycles.
  host::Placement placement = host::Placement::Sram;
};

struct SolveResult {
  std::vector<double> x;
  bool converged = false;
  int iterations = 0;
  double residual_norm = 0.0;
  u64 fpga_cycles = 0;   ///< simulated cycles spent in BLAS calls
  u64 fpga_flops = 0;
  /// Staging cycles the fused graph plans avoided vs per-op execution
  /// (zero under Placement::Sram, where nothing stages to begin with).
  u64 staging_saved_cycles = 0;
  double clock_mhz = 0.0;

  double fpga_seconds() const {
    return clock_mhz > 0 ? static_cast<double>(fpga_cycles) / (clock_mhz * 1e6)
                         : 0.0;
  }
  double sustained_mflops() const {
    const double s = fpga_seconds();
    return s > 0 ? static_cast<double>(fpga_flops) / s / 1e6 : 0.0;
  }
};

/// Dense Jacobi: A is row-major n x n with a nonzero diagonal.
SolveResult jacobi_dense(const host::Context& ctx, const std::vector<double>& a,
                         std::size_t n, const std::vector<double>& b,
                         const SolveOptions& opts = {});

/// Dense Jacobi for many right-hand sides sharing one A: the systems march
/// in lockstep and each iteration runs every still-unconverged system's
/// R x product as one fused sweep graph (Runtime::run_graph), which stages
/// the shared R once per sweep under Placement::Dram. Values are
/// per-system identical (bit-for-bit) to running jacobi_dense once per b;
/// under the default Sram placement fpga_cycles match bit-for-bit too,
/// while under Dram the batch spends fewer staging cycles than the
/// singles (the difference is reported in staging_saved_cycles).
std::vector<SolveResult> jacobi_dense_batch(
    const host::Context& ctx, const std::vector<double>& a, std::size_t n,
    const std::vector<std::vector<double>>& bs, const SolveOptions& opts = {});

/// Sparse Jacobi: `a` in CRS with a full nonzero diagonal; the off-diagonal
/// products run on the SpMXV engine.
SolveResult jacobi_sparse(const blas2::CrsMatrix& a, const std::vector<double>& b,
                          const SolveOptions& opts = {},
                          const blas2::SpmxvConfig& cfg = {});

}  // namespace xd::solver
