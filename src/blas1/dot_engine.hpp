// Level 1 BLAS: tree-based dot-product architecture (Sec 4.1).
//
// k pipelined multipliers accept one element of each vector per cycle
// (2k words/cycle of input bandwidth when streaming); a (k-1)-adder tree sums
// the k products; the reduction circuit (Sec 4.3) accumulates the tree
// outputs into the scalar result. Because both vectors stream with no reuse,
// the operation is I/O bound: the engine throttles issue on a memory channel
// whose rate models the FPGA<->SRAM (or DRAM) bandwidth, so sustained
// performance degrades exactly as the available bandwidth does (Table 3).
//
// The engine processes a batch of dot products back-to-back; each product is
// one reduction set, exercising the multi-set capability of the circuit.
#pragma once

#include <cstddef>
#include <vector>

#include "common/ring_fifo.hpp"
#include "fp/fpu.hpp"
#include "host/report.hpp"
#include "mem/channel.hpp"
#include "reduce/reduction_circuit.hpp"

namespace xd::telemetry {
class Session;
}

namespace xd::blas1 {

struct DotConfig {
  unsigned k = 2;  ///< multipliers (paper: k=2 fits the XD1 SRAM bandwidth)
  unsigned adder_stages = fp::kAdderStages;
  unsigned multiplier_stages = fp::kMultiplierStages;
  /// Input bandwidth in words/cycle (e.g. 5.5 GB/s at 170 MHz ~= 4.04).
  double mem_words_per_cycle = 4.0;
  double clock_mhz = 170.0;  ///< for the report only
  /// Optional telemetry sink (metrics under mem.dot.* / fpu.dot.* /
  /// reduce.dot.* / blas1.dot.*, a "compute" phase span, and trace events
  /// when the session's trace is enabled). Null disables instrumentation.
  telemetry::Session* telemetry = nullptr;
};

struct DotOutcome {
  std::vector<double> results;  ///< one per (u, v) pair
  host::PerfReport report;
};

class DotEngine {
 public:
  explicit DotEngine(const DotConfig& cfg);

  /// Compute dot(u[i], v[i]) for each pair in the batch, cycle-accurately.
  /// Vectors within a pair must have equal length >= 1.
  DotOutcome run(const std::vector<std::vector<double>>& us,
                 const std::vector<std::vector<double>>& vs);

  /// Single-pair run without wrapping the operands in batch vectors (the
  /// runtime's OpKind::Dot path — the wrap copied both vectors per op,
  /// which dominated tiny-op dispatch). Bit-identical to run({u}, {v}).
  DotOutcome run_pair(const std::vector<double>& u,
                      const std::vector<double>& v);

  const DotConfig& config() const { return cfg_; }

  /// Minimum latency in cycles under the configured bandwidth if compute
  /// were free: ceil(2 * total_elements / mem_words_per_cycle) (Sec 4.4).
  u64 io_lower_bound_cycles(u64 total_elements) const;

 private:
  /// Shared cycle loop over `count` pairs addressed through pointer arrays.
  DotOutcome run_impl(const std::vector<double>* const* us,
                      const std::vector<double>* const* vs, std::size_t count);

  DotConfig cfg_;
};

}  // namespace xd::blas1
