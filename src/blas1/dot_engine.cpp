#include "blas1/dot_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <optional>

#include "fp/backend.hpp"
#include "fp/softfloat.hpp"
#include "sim/scratch.hpp"
#include "telemetry/session.hpp"

namespace xd::blas1 {

namespace {
/// FIFO between the adder tree and the reduction circuit; absorbs the rare
/// cycles where the circuit refuses input (buffer swap pressure).
constexpr std::size_t kRedFifoCap = 64;
}  // namespace

DotEngine::DotEngine(const DotConfig& cfg) : cfg_(cfg) {
  require(cfg.k >= 1, "dot engine needs k >= 1");
  require(cfg.k == 1 || is_pow2(cfg.k), "adder tree needs k to be a power of two");
  require(cfg.mem_words_per_cycle > 0.0, "memory bandwidth must be positive");
}

u64 DotEngine::io_lower_bound_cycles(u64 total_elements) const {
  return static_cast<u64>(
      std::ceil(2.0 * static_cast<double>(total_elements) / cfg_.mem_words_per_cycle));
}

DotOutcome DotEngine::run(const std::vector<std::vector<double>>& us,
                          const std::vector<std::vector<double>>& vs) {
  require(us.size() == vs.size(), "dot batch: mismatched u/v counts");
  std::vector<const std::vector<double>*> up(us.size()), vp(vs.size());
  for (std::size_t i = 0; i < us.size(); ++i) {
    up[i] = &us[i];
    vp[i] = &vs[i];
  }
  return run_impl(up.data(), vp.data(), us.size());
}

DotOutcome DotEngine::run_pair(const std::vector<double>& u,
                               const std::vector<double>& v) {
  const std::vector<double>* up = &u;
  const std::vector<double>* vp = &v;
  return run_impl(&up, &vp, 1);
}

DotOutcome DotEngine::run_impl(const std::vector<double>* const* us,
                               const std::vector<double>* const* vs,
                               std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    if (us[i]->empty() || us[i]->size() != vs[i]->size()) {
      require(false, cat("dot pair ", i,
                         ": vectors must be equal-length and non-empty"));
    }
  }

  const unsigned k = cfg_.k;
  // The burst allowance covers one full lane group (2k words) so a channel
  // slower than the group size still feeds the lanes every few cycles.
  mem::Channel channel(cfg_.mem_words_per_cycle, "dot.mem",
                       std::max(cfg_.mem_words_per_cycle + 2.0, 2.0 * k));

  // The adder tree + reduction circuit + multiplier bank scaffold comes
  // from the per-thread scratch pool (reset, not reconstructed — its ~60
  // allocations dominated tiny-op cost). The FIFO's issue gate keeps at
  // most kRedFifoCap queued entries, but groups already in flight in the
  // bank and tree still land after the gate closes — its capacity covers
  // that worst case.
  const fp::Backend& be = fp::active_backend();
  const unsigned kk = std::max(2u, k);  // tree unused when k == 1
  sim::TreeScratchLease scratch(
      {kk, cfg_.adder_stages, cfg_.multiplier_stages,
       kRedFifoCap + cfg_.multiplier_stages +
           static_cast<std::size_t>(log2_floor(kk)) * cfg_.adder_stages + 2,
       &be});
  fp::AdderTree& tree = scratch->tree;
  reduce::ReductionCircuit& red = scratch->red;
  fp::MultiplierBank& mults = scratch->mults;
  RingFifo<std::pair<u64, bool>>& red_fifo = scratch->red_fifo;
  if (cfg_.telemetry && cfg_.telemetry->trace().enabled()) {
    red.attach_trace(&cfg_.telemetry->trace());
  }

  // Per-group operand panels. Dot touches every element exactly once, so
  // whole-vector pre-conversion would double the memory traffic (write the
  // converted copy, read it back); converting one k-wide group into these
  // L1-resident panels right before the multiply costs the same conversions
  // without the extra pass.
  scratch->abits.resize(k);
  scratch->xbits.resize(k);
  u64* const upanel = scratch->abits.data();
  u64* const vpanel = scratch->xbits.data();

  DotOutcome out;
  out.results.assign(count, 0.0);

  std::size_t pair = 0, pos = 0;  // input cursor
  std::size_t results_done = 0;
  u64 streamed_words = 0;
  u64 cycle = 0;
  u64 stalls = 0;

  const u64 budget = 50'000'000;
  while (results_done < count) {
    ++cycle;
    if (cycle > budget) throw SimError("dot engine wedged");
    channel.tick();

    // Multiplier bank: completed product groups feed the adder tree (k >= 2)
    // or go straight to the reduction FIFO (k == 1).
    if (auto g = mults.pop_ready(cycle)) {
      if (k == 1) {
        red_fifo.push({g->products[0], g->last});
      } else {
        tree.issue(g->products, g->last ? 1 : 0);
      }
    }

    if (k >= 2) {
      tree.tick();
      if (auto r = tree.take_output()) {
        red_fifo.push({r->bits, r->tag != 0});
      }
    }

    // Reduction circuit: offer the oldest pending tree output.
    std::optional<reduce::Input> rin;
    if (!red_fifo.empty()) {
      rin = reduce::Input{red_fifo.front().first, red_fifo.front().second};
    }
    const bool consumed = red.cycle(rin);
    if (rin.has_value()) {
      if (consumed) {
        red_fifo.pop();
      } else {
        ++stalls;
      }
    }
    if (auto r = red.take_result()) {
      out.results.at(r->set_id) = fp::from_bits(r->bits);
      ++results_done;
    }

    // Issue a new group of k element pairs if bandwidth and buffering allow.
    if (pair < count && red_fifo.size() < kRedFifoCap) {
      const auto& u = *us[pair];
      const auto& v = *vs[pair];
      const std::size_t remaining = u.size() - pos;
      const std::size_t lanes = std::min<std::size_t>(k, remaining);
      const double words = 2.0 * static_cast<double>(lanes);
      if (channel.can_transfer(words)) {
        channel.transfer(words);
        streamed_words += 2 * lanes;
        std::memcpy(upanel, &u[pos], lanes * sizeof(double));
        std::memcpy(vpanel, &v[pos], lanes * sizeof(double));
        const bool last = (pos + lanes == u.size());
        u64* products = mults.stage(cycle, last);
        be.mul_n(upanel, vpanel, products, lanes);
        std::fill(products + lanes, products + mults.width(), fp::kPosZero);
        pos += lanes;
        if (pos == u.size()) {
          pos = 0;
          ++pair;
        }
      }
    }
  }

  u64 flops = 0;
  for (std::size_t i = 0; i < count; ++i) flops += 2 * us[i]->size();

  out.report.design = cat("dot k=", std::to_string(k));
  out.report.cycles = cycle;
  out.report.compute_cycles = cycle;
  out.report.flops = flops;
  out.report.stall_cycles = stalls + red.stats().stall_cycles;
  out.report.sram_words = static_cast<double>(streamed_words);
  out.report.clock_mhz = cfg_.clock_mhz;

  if (telemetry::Session* tel = cfg_.telemetry) {
    tel->phase("compute", cycle);
    channel.publish(tel->metrics(), "mem.dot.sram");
    if (k >= 2) tree.publish(tel->metrics(), "fpu.dot.addtree");
    red.publish(tel->metrics(), "reduce.dot");
    tel->counter("fpu.dot.mul.ops").add(flops / 2);
    tel->counter("blas1.dot.runs").add(1);
    tel->counter("blas1.dot.cycles").add(cycle);
    tel->counter("blas1.dot.flops").add(flops);
    tel->counter("blas1.dot.stall_cycles").add(out.report.stall_cycles);
    auto lengths = tel->histogram("blas1.dot.vector_words");
    for (std::size_t i = 0; i < count; ++i) {
      lengths.observe(static_cast<double>(us[i]->size()));
    }
  }
  return out;
}

}  // namespace xd::blas1
