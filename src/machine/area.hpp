// Area and clock model for the paper's designs.
//
// We have no synthesis tool chain, so place & route results are modeled from
// the constants the paper reports and simple composition rules, calibrated so
// the exact configurations the paper measured come out at the paper's
// numbers:
//   Table 2: adder 892 slices / 14 stages, multiplier 835 / 11, both 170 MHz;
//            reduction circuit 1658 slices at 170 MHz.
//   Table 3: dot (k=2) 5210 slices @170; GEMV tree (k=4) 9669 @170.
//   Table 4: GEMV on XD1 13772 slices @164; GEMM on XD1 (k=8) 21029 @130.
//   Fig 9:   GEMM PE 2158 slices; clock 155 MHz at k=1 degrading to
//            125 MHz at k=10 (routing pressure); max 10 PEs standalone,
//            max 8 PEs with the XD1 interface (RT core + SRAM controllers,
//            ~3000 slices).
// Composition rule: design area = sum of FP cores + reduction circuit (where
// used) + a calibrated control/steering overhead; clock = base clock minus a
// routing degradation that grows with the number of parallel lanes.
#pragma once

#include "common/util.hpp"
#include "machine/device.hpp"

namespace xd::machine {

/// Slice counts / stage depths / clock of the FP cores (paper Table 2).
struct FpCoreSpec {
  unsigned adder_slices = 892;
  unsigned multiplier_slices = 835;
  unsigned adder_stages = 14;
  unsigned multiplier_stages = 11;
  double clock_mhz = 170.0;
};

/// One row of a design-characteristics report (Tables 3 / 4 / Fig 9).
struct DesignArea {
  unsigned slices = 0;
  double clock_mhz = 0.0;
  double fraction_of(const FpgaDevice& dev) const {
    return static_cast<double>(slices) / static_cast<double>(dev.slices);
  }
};

class AreaModel {
 public:
  explicit AreaModel(FpCoreSpec cores = {}) : cores_(cores) {}

  const FpCoreSpec& cores() const { return cores_; }

  /// Reduction circuit: one adder plus buffer/control logic (Table 2).
  unsigned reduction_circuit_slices() const { return 1658; }

  /// Tree-based dot-product design with k multipliers (Sec 4.1):
  /// k multipliers, k-1 tree adders, the reduction circuit, and control.
  DesignArea dot_design(unsigned k) const;

  /// Tree-based GEMV design with k multipliers (Sec 4.2, row-major).
  DesignArea mxv_tree_design(unsigned k) const;

  /// Column-major GEMV design with k adder/multiplier pairs (Sec 4.2).
  DesignArea mxv_col_design(unsigned k) const;

  /// GEMM linear-array PE (Sec 5.1): one adder + one multiplier + registers,
  /// local storage steering and the three I/O ports. 2158 slices measured.
  unsigned mm_pe_slices() const { return 2158; }

  /// GEMM design of k PEs standalone (Fig 9) and its achievable clock.
  DesignArea mm_design(unsigned k) const;

  /// GEMM design of k PEs with the XD1 interface and the extra accumulation
  /// adder of the hierarchical design (Table 4 row: 21029 slices, 130 MHz).
  DesignArea mm_design_xd1(unsigned k) const;

  /// GEMV tree design with XD1 interface (Table 4 row: 13772 slices, 164 MHz).
  DesignArea mxv_design_xd1(unsigned k) const;

  /// Slices consumed by the XD1 glue (RT core, four SRAM controllers,
  /// status-register logic): "approximately 3000 slices".
  unsigned xd1_interface_slices() const { return 3000; }

  /// Maximum number of GEMM PEs that place & route succeeds with.
  /// `with_xd1_interface` reserves the glue slices and tightens the routing
  /// headroom (paper: 10 standalone, 8 on XD1, both on XC2VP50).
  unsigned max_mm_pes(const FpgaDevice& dev, bool with_xd1_interface) const;

  /// Maximum PEs for a hypothetical improved PE of `pe_slices` (Figs 11/12).
  /// The paper computes chassis projections from device slices / PE slices
  /// (rounded to nearest); we follow it exactly.
  unsigned projected_pes(const FpgaDevice& dev, unsigned pe_slices) const;

  /// Achievable clock of a k-PE GEMM design: 155 MHz at k=1, linear routing
  /// degradation to 125 MHz at k=10 (Fig 9).
  double mm_clock_mhz(unsigned k) const;

 private:
  FpCoreSpec cores_;
};

}  // namespace xd::machine
