// FPGA device catalog.
//
// The paper targets the Xilinx Virtex-II Pro XC2VP50 (the device in Cray
// XD1 compute blades) and projects to the larger XC2VP100 (Figure 12).
// Capacities here are the figures the paper quotes (Sec 4.4, 6.4.1).
#pragma once

#include <string>

#include "common/util.hpp"

namespace xd::machine {

struct FpgaDevice {
  std::string name;
  unsigned slices;        ///< logic capacity
  u64 bram_bits;          ///< on-chip Block RAM capacity
  unsigned io_pins;

  /// On-chip memory capacity in 64-bit words.
  u64 bram_words() const { return bram_bits / 64; }
};

/// Xilinx Virtex-II Pro XC2VP50: 23616 slices, ~4 Mb BRAM, 852 I/O pins.
FpgaDevice xc2vp50();

/// Xilinx Virtex-II Pro XC2VP100: 44096 slices, ~8 Mb BRAM, 1164 I/O pins.
FpgaDevice xc2vp100();

/// Lookup by name ("XC2VP50" / "XC2VP100"); throws ConfigError if unknown.
FpgaDevice device_by_name(const std::string& name);

}  // namespace xd::machine
