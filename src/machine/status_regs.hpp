// Processor <-> FPGA control protocol (Sec 6.1/6.2).
//
// The paper's XD1 designs carry an Rt_Client with "several status registers
// for communication between the processor and the FPGA": the host writes the
// problem size, signals initialization, polls for completion. Each register
// access crosses the RapidArray transport, so the handshake costs real link
// round trips — a small but genuine overhead this model makes visible.
//
// The register file lives on the FPGA; host-side reads/writes consume link
// credit and a fixed round-trip latency. A typical session:
//
//   regs.host_write(Reg::ProblemSize, n);        // config
//   regs.host_write(Reg::Command, kCmdInit);
//   ... FPGA design raises InitDone ...
//   regs.host_write(Reg::Command, kCmdStart);
//   while (regs.host_read(Reg::Status) != kStatusDone) { /* poll */ }
//
// host_* calls advance the node's clock internally by the round-trip cost
// and return the cycle count consumed, so engines can add the handshake to
// their reports.
#pragma once

#include <array>

#include "common/util.hpp"
#include "machine/node.hpp"

namespace xd::machine {

class StatusRegisters {
 public:
  enum class Reg : unsigned {
    ProblemSize = 0,
    Command = 1,
    Status = 2,
    InitDone = 3,
    Scratch0 = 4,
    Scratch1 = 5,
    Count = 6,
  };
  static constexpr u64 kCmdInit = 1;
  static constexpr u64 kCmdStart = 2;
  static constexpr u64 kStatusIdle = 0;
  static constexpr u64 kStatusBusy = 1;
  static constexpr u64 kStatusDone = 2;

  /// `round_trip_cycles`: host-side access latency over the RT link in FPGA
  /// clock cycles (tens of cycles on XD1-class transports).
  explicit StatusRegisters(ComputeNode& node, unsigned round_trip_cycles = 40);

  /// Host-side access: advances the node by the round trip and consumes one
  /// link word of credit. Returns cycles consumed.
  u64 host_write(Reg r, u64 value);
  u64 host_read(Reg r, u64& value);

  /// FPGA-side access: same-cycle, free (the registers live on the fabric).
  void fpga_write(Reg r, u64 value) { regs_.at(idx(r)) = value; }
  u64 fpga_read(Reg r) const { return regs_.at(idx(r)); }

  /// Host polls Status until `target`, advancing the node between polls;
  /// returns total cycles consumed. `poll_interval` models host loop pacing.
  u64 host_poll_until(u64 target, unsigned poll_interval, u64 max_cycles);

  u64 host_accesses() const { return accesses_; }

 private:
  static std::size_t idx(Reg r) { return static_cast<std::size_t>(r); }
  u64 round_trip();

  ComputeNode& node_;
  unsigned round_trip_cycles_;
  std::array<u64, static_cast<std::size_t>(Reg::Count)> regs_{};
  u64 accesses_ = 0;
};

}  // namespace xd::machine
