#include "machine/node.hpp"

namespace xd::machine {

ComputeNode::ComputeNode(const NodeConfig& cfg, unsigned index)
    : cfg_(cfg), index_(index) {
  require(cfg.sram_banks >= 1, "node needs at least one SRAM bank");
  banks_.reserve(cfg.sram_banks);
  for (unsigned b = 0; b < cfg.sram_banks; ++b) {
    banks_.push_back(std::make_unique<mem::SramBank>(
        cfg.sram_bank_words, cat("node", index_, ".sram", b)));
  }
  const double words_per_cycle =
      mem::Channel::words_per_cycle_for(cfg.dram_bytes_per_s, clock_hz());
  dram_ = std::make_unique<mem::Dram>(cfg.dram_words, words_per_cycle,
                                      cat("node", index_, ".dram"));
  dma_ = std::make_unique<mem::DmaEngine>(dram_->link(), cfg.sram_banks);
}

void ComputeNode::tick() {
  ++cycles_;
  for (auto& b : banks_) b->tick();
  dram_->tick();
  dma_->tick();
}

std::size_t ComputeNode::sram_total_words() const {
  return banks_.size() * cfg_.sram_bank_words;
}

double ComputeNode::sram_achieved_bytes_per_s() const {
  double total = 0.0;
  for (const auto& b : banks_) total += b->achieved_bytes_per_s(clock_hz());
  return total;
}

double ComputeNode::dram_achieved_bytes_per_s() const {
  return dram_->link().achieved_bytes_per_s(clock_hz());
}

}  // namespace xd::machine
