#include "machine/chassis.hpp"

namespace xd::machine {

Chassis::Chassis(const ChassisConfig& cfg, unsigned index)
    : cfg_(cfg), index_(index) {
  require(cfg.nodes >= 1, "chassis needs at least one node");
  const double clock_hz = cfg.node.clock_mhz * 1e6;
  const double words_per_cycle =
      mem::Channel::words_per_cycle_for(cfg.link_bytes_per_s, clock_hz);
  for (unsigned i = 0; i < cfg.nodes; ++i) {
    nodes_.push_back(std::make_unique<ComputeNode>(cfg.node, index * cfg.nodes + i));
  }
  for (unsigned i = 0; i + 1 < cfg.nodes; ++i) {
    fwd_.push_back(std::make_unique<mem::Channel>(
        words_per_cycle, cat("chassis", index_, ".fwd", i)));
    bwd_.push_back(std::make_unique<mem::Channel>(
        words_per_cycle, cat("chassis", index_, ".bwd", i)));
  }
}

void Chassis::tick() {
  for (auto& n : nodes_) n->tick();
  for (auto& c : fwd_) c->tick();
  for (auto& c : bwd_) c->tick();
}

}  // namespace xd::machine
