#include "machine/device.hpp"

namespace xd::machine {

FpgaDevice xc2vp50() {
  // "contains 23616 slices, about 4 Mb of on-chip memory and 852 I/O pins"
  return FpgaDevice{"XC2VP50", 23616, 4ull * 1024 * 1024, 852};
}

FpgaDevice xc2vp100() {
  // "XC2VP100 contains 44096 slices, about 8 Mb of on-chip memory and 1164
  // I/O pins"
  return FpgaDevice{"XC2VP100", 44096, 8ull * 1024 * 1024, 1164};
}

FpgaDevice device_by_name(const std::string& name) {
  if (name == "XC2VP50") return xc2vp50();
  if (name == "XC2VP100") return xc2vp100();
  throw ConfigError(cat("unknown FPGA device: ", name));
}

}  // namespace xd::machine
