#include "machine/system.hpp"

namespace xd::machine {

System::System(const SystemConfig& cfg) : cfg_(cfg) {
  require(cfg.chassis_count >= 1, "system needs at least one chassis");
  const double clock_hz = cfg.chassis.node.clock_mhz * 1e6;
  const double words_per_cycle =
      mem::Channel::words_per_cycle_for(cfg.interchassis_bytes_per_s, clock_hz);
  for (unsigned i = 0; i < cfg.chassis_count; ++i) {
    chassis_.push_back(std::make_unique<Chassis>(cfg.chassis, i));
  }
  for (unsigned i = 0; i + 1 < cfg.chassis_count; ++i) {
    links_.push_back(
        std::make_unique<mem::Channel>(words_per_cycle, cat("syslink", i)));
  }
}

void System::tick() {
  for (auto& c : chassis_) c->tick();
  for (auto& l : links_) l->tick();
}

unsigned System::total_fpgas() const {
  unsigned n = 0;
  for (const auto& c : chassis_) n += c->node_count();
  return n;
}

}  // namespace xd::machine
