#include "machine/area.hpp"

#include <algorithm>
#include <cmath>

namespace xd::machine {
namespace {
// Calibrated control/steering overheads (see header comment). Each is chosen
// so the configuration the paper measured reproduces its reported slice count
// exactly; the per-lane terms extrapolate to other k.
constexpr unsigned kDotControlBase = 570;       // k=2 -> 5210 total
constexpr unsigned kDotControlPerLane = 210;
constexpr unsigned kMxvControlBase = 995;       // k=4 -> 9669 total
constexpr unsigned kMxvControlPerLane = 250;
constexpr unsigned kMxvXd1Extra = 1103;         // k=4 + glue -> 13772 total
// Glue for the XD1 GEMM design (RT core, SRAM controllers, status registers,
// block-sequencing control): k=8 PEs + 1 adder + glue -> 21029 total.
constexpr unsigned kMmXd1Glue = 2873;

// Routing headroom: fraction of device slices place & route can actually
// fill for this design family (beyond it, routing fails or the clock
// collapses). Calibrated to "at most 10 PEs" standalone and "at most 8 PEs"
// with the XD1 interface on XC2VP50.
constexpr double kRouteFracStandalone = 0.95;
constexpr double kRouteFracXd1 = 0.90;
}  // namespace

DesignArea AreaModel::dot_design(unsigned k) const {
  require(k >= 1, "dot design needs k >= 1");
  const unsigned tree_adders = k - 1;
  const unsigned slices = k * cores_.multiplier_slices +
                          tree_adders * cores_.adder_slices +
                          reduction_circuit_slices() + kDotControlBase +
                          k * kDotControlPerLane;
  return DesignArea{slices, cores_.clock_mhz};
}

DesignArea AreaModel::mxv_tree_design(unsigned k) const {
  require(k >= 1, "GEMV tree design needs k >= 1");
  const unsigned tree_adders = k - 1;
  const unsigned slices = k * cores_.multiplier_slices +
                          tree_adders * cores_.adder_slices +
                          reduction_circuit_slices() + kMxvControlBase +
                          k * kMxvControlPerLane;
  return DesignArea{slices, cores_.clock_mhz};
}

DesignArea AreaModel::mxv_col_design(unsigned k) const {
  require(k >= 1, "GEMV column design needs k >= 1");
  // k multiplier/adder pairs, no reduction circuit (interleaved accumulation
  // into local y storage), similar steering overhead per lane.
  const unsigned slices = k * (cores_.multiplier_slices + cores_.adder_slices) +
                          kMxvControlBase + k * kMxvControlPerLane;
  return DesignArea{slices, cores_.clock_mhz};
}

double AreaModel::mm_clock_mhz(unsigned k) const {
  // Fig 9: 155 MHz for one PE, ~125 MHz at ten PEs; degradation is linear in
  // the number of PEs (routing complexity).
  const double clock = 155.0 - (30.0 / 9.0) * (static_cast<double>(k) - 1.0);
  return std::max(clock, 100.0);
}

DesignArea AreaModel::mm_design(unsigned k) const {
  require(k >= 1, "GEMM design needs k >= 1");
  return DesignArea{k * mm_pe_slices(), mm_clock_mhz(k)};
}

DesignArea AreaModel::mm_design_xd1(unsigned k) const {
  require(k >= 1, "GEMM design needs k >= 1");
  // k PEs + the hierarchical design's accumulation adder + XD1 glue. XD1
  // integration costs ~2 MHz over the standalone clock (Table 4: 130 MHz at
  // k=8 vs Fig 9's ~132 MHz).
  const unsigned slices = k * mm_pe_slices() + cores_.adder_slices + kMmXd1Glue;
  const double clock = static_cast<double>(std::lround(mm_clock_mhz(k) - 1.7));
  return DesignArea{slices, clock};
}

DesignArea AreaModel::mxv_design_xd1(unsigned k) const {
  const DesignArea base = mxv_tree_design(k);
  // Table 4: 164 MHz after integrating the RT core and memory controllers.
  return DesignArea{base.slices + xd1_interface_slices() + kMxvXd1Extra, 164.0};
}

unsigned AreaModel::max_mm_pes(const FpgaDevice& dev, bool with_xd1_interface) const {
  const double frac = with_xd1_interface ? kRouteFracXd1 : kRouteFracStandalone;
  double budget = frac * static_cast<double>(dev.slices);
  if (with_xd1_interface) {
    budget -= static_cast<double>(kMmXd1Glue + cores_.adder_slices);
  }
  if (budget <= 0.0) return 0;
  return static_cast<unsigned>(budget / static_cast<double>(mm_pe_slices()));
}

unsigned AreaModel::projected_pes(const FpgaDevice& dev, unsigned pe_slices) const {
  require(pe_slices > 0, "PE slice count must be positive");
  // Sec 6.4.1 computes chassis GFLOPS from device capacity / PE area and then
  // deducts 25% for routing; the PE counts implied by the quoted numbers
  // (27 GFLOPS on XC2VP50, ~50 on XC2VP100 with a 1600-slice PE) correspond
  // to rounding to the nearest integer.
  const double ratio =
      static_cast<double>(dev.slices) / static_cast<double>(pe_slices);
  return static_cast<unsigned>(std::lround(ratio));
}

}  // namespace xd::machine
