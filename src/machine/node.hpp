// Compute-node model (one XD1 blade as seen by an FPGA design).
//
// A node is one FPGA plus its four QDR-II SRAM banks and the Opteron DRAM
// reached over the RapidArray transport (Sec 3.1.2 / Fig 2 of the paper).
// The simulated BLAS architectures run "on" a node: they pull operands from
// the node's memories through its bandwidth-modeled ports and the node
// accounts all traffic so benches can report achieved bandwidths per level.
#pragma once

#include <memory>
#include <vector>

#include "machine/area.hpp"
#include "machine/device.hpp"
#include "mem/dma.hpp"
#include "mem/dram.hpp"
#include "mem/sram_bank.hpp"

namespace xd::machine {

struct NodeConfig {
  FpgaDevice device = xc2vp50();
  double clock_mhz = 170.0;          ///< design clock the node runs at
  unsigned sram_banks = 4;           ///< XD1: four QDR-II banks
  std::size_t sram_bank_words = 4ull * 1024 * 1024 / kWordBytes;  ///< 4 MB each
  std::size_t dram_words = 64ull * 1024 * 1024 / kWordBytes;  ///< modeled slice of the 8 GB
  double dram_bytes_per_s = 3.2 * kGB;  ///< RapidArray link, Table 1 Level C
};

class ComputeNode {
 public:
  explicit ComputeNode(const NodeConfig& cfg, unsigned index = 0);

  /// Advance one design-clock cycle (ports reopen, link credit accrues, DMA
  /// progresses).
  void tick();

  mem::SramBank& sram(unsigned bank) { return *banks_.at(bank); }
  unsigned sram_bank_count() const { return static_cast<unsigned>(banks_.size()); }
  std::size_t sram_total_words() const;
  mem::Dram& dram() { return *dram_; }
  mem::DmaEngine& dma() { return *dma_; }

  const FpgaDevice& device() const { return cfg_.device; }
  double clock_hz() const { return cfg_.clock_mhz * 1e6; }
  double clock_mhz() const { return cfg_.clock_mhz; }
  unsigned index() const { return index_; }
  u64 cycles() const { return cycles_; }

  /// Aggregate achieved SRAM bandwidth across banks at the node clock.
  double sram_achieved_bytes_per_s() const;
  /// Achieved DRAM-link bandwidth at the node clock.
  double dram_achieved_bytes_per_s() const;

 private:
  NodeConfig cfg_;
  unsigned index_;
  std::vector<std::unique_ptr<mem::SramBank>> banks_;
  std::unique_ptr<mem::Dram> dram_;
  std::unique_ptr<mem::DmaEngine> dma_;
  u64 cycles_ = 0;
};

}  // namespace xd::machine
