// Chassis model: six compute blades whose FPGAs are chained through
// RocketIO multi-gigabit transceivers (Sec 3.1.2). The hierarchical GEMM
// design (Sec 5.2) maps its linear FPGA array onto this chain; only node 0
// touches DRAM, and C results flow back along the same links.
#pragma once

#include <memory>
#include <vector>

#include "machine/node.hpp"
#include "mem/channel.hpp"

namespace xd::machine {

struct ChassisConfig {
  NodeConfig node;
  unsigned nodes = 6;  ///< blades per chassis in XD1
  /// Sustained FPGA-to-FPGA bandwidth over the RocketIO links. The paper only
  /// needs ~73 MB/s of it for GEMM; XD1's MGT links provide on the order of
  /// 2 GB/s per direction.
  double link_bytes_per_s = 2.0 * kGB;
};

class Chassis {
 public:
  explicit Chassis(const ChassisConfig& cfg, unsigned index = 0);

  void tick();

  unsigned node_count() const { return static_cast<unsigned>(nodes_.size()); }
  ComputeNode& node(unsigned i) { return *nodes_.at(i); }

  /// Link carrying traffic from node i to node i+1 (forward, A/B stream) and
  /// back (C results); modeled as one full-duplex channel per direction.
  mem::Channel& forward_link(unsigned i) { return *fwd_.at(i); }
  mem::Channel& backward_link(unsigned i) { return *bwd_.at(i); }

  unsigned index() const { return index_; }

 private:
  ChassisConfig cfg_;
  unsigned index_;
  std::vector<std::unique_ptr<ComputeNode>> nodes_;
  std::vector<std::unique_ptr<mem::Channel>> fwd_;
  std::vector<std::unique_ptr<mem::Channel>> bwd_;
};

}  // namespace xd::machine
