// Full reconfigurable-system model: multiple chassis connected by RapidArray
// external switches (Sec 6.4.2: a typical XD1 installation has 12 chassis,
// 4 GB/s between chassis). Used by the multi-chassis GEMM projection bench,
// the chassis-scaling example, and the host shard scheduler
// (host/shard.hpp), which maps l-FPGA sub-ops onto the chain and charges
// their transfer legs through these channels.
//
// Tick-ordering contract (pinned by tests/test_machine.cpp):
// One System::tick() is one design-clock cycle for every component, advanced
// in a fixed order — each chassis in index order (its nodes, then its
// forward links, then its backward links), then the inter-chassis links in
// index order. Consequences consumers may rely on:
//   - No channel has credit before its first tick; nothing crosses any link
//     in the cycle before the system first ticks.
//   - Every link (intra- and inter-chassis) advances in lockstep: after N
//     System::tick()s each reports cycles() == N.
//   - Producers tick before the links that would carry their output (nodes
//     before chassis links, chassis before inter-chassis links), so a word
//     produced in cycle t can be offered to its outgoing link in cycle t
//     (tick-then-transfer). A same-cycle produce->forward across a chassis
//     boundary is therefore allowed, never ambiguous: the inter-chassis
//     link accrues its cycle-t credit after all chassis-side producers ran.
//   - Transfers at coarser granularity (the shard scheduler moves a whole
//     panel per leg) are store-and-forward: a leg completes on the hop's
//     channel before the next hop starts.
#pragma once

#include <memory>
#include <vector>

#include "machine/chassis.hpp"

namespace xd::machine {

struct SystemConfig {
  ChassisConfig chassis;
  unsigned chassis_count = 12;
  double interchassis_bytes_per_s = 4.0 * kGB;  ///< Sec 6.4.2
};

class System {
 public:
  explicit System(const SystemConfig& cfg);

  /// Advance one design-clock cycle in the documented order: all chassis
  /// (nodes, forward links, backward links) first, then the inter-chassis
  /// links — producers always tick before the links that carry their
  /// output. See the header comment for the full contract.
  void tick();

  unsigned chassis_count() const { return static_cast<unsigned>(chassis_.size()); }
  Chassis& chassis(unsigned i) { return *chassis_.at(i); }

  /// Total FPGAs across the installation (the `l` of Sec 5.2 at full scale).
  unsigned total_fpgas() const;

  /// Link between chassis i and i+1.
  mem::Channel& chassis_link(unsigned i) { return *links_.at(i); }

  const SystemConfig& config() const { return cfg_; }

 private:
  SystemConfig cfg_;
  std::vector<std::unique_ptr<Chassis>> chassis_;
  std::vector<std::unique_ptr<mem::Channel>> links_;
};

}  // namespace xd::machine
