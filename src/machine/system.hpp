// Full reconfigurable-system model: multiple chassis connected by RapidArray
// external switches (Sec 6.4.2: a typical XD1 installation has 12 chassis,
// 4 GB/s between chassis). Used by the multi-chassis GEMM projection bench
// and the chassis-scaling example.
#pragma once

#include <memory>
#include <vector>

#include "machine/chassis.hpp"

namespace xd::machine {

struct SystemConfig {
  ChassisConfig chassis;
  unsigned chassis_count = 12;
  double interchassis_bytes_per_s = 4.0 * kGB;  ///< Sec 6.4.2
};

class System {
 public:
  explicit System(const SystemConfig& cfg);

  void tick();

  unsigned chassis_count() const { return static_cast<unsigned>(chassis_.size()); }
  Chassis& chassis(unsigned i) { return *chassis_.at(i); }

  /// Total FPGAs across the installation (the `l` of Sec 5.2 at full scale).
  unsigned total_fpgas() const;

  /// Link between chassis i and i+1.
  mem::Channel& chassis_link(unsigned i) { return *links_.at(i); }

  const SystemConfig& config() const { return cfg_; }

 private:
  SystemConfig cfg_;
  std::vector<std::unique_ptr<Chassis>> chassis_;
  std::vector<std::unique_ptr<mem::Channel>> links_;
};

}  // namespace xd::machine
