#include "machine/status_regs.hpp"

namespace xd::machine {

StatusRegisters::StatusRegisters(ComputeNode& node, unsigned round_trip_cycles)
    : node_(node), round_trip_cycles_(round_trip_cycles) {
  require(round_trip_cycles >= 1, "status registers need a positive round trip");
}

u64 StatusRegisters::round_trip() {
  // One word crosses the RT link; wait for credit, then pay the transport
  // latency in node cycles.
  u64 cycles = 0;
  while (!node_.dram().link().can_transfer(1.0)) {
    node_.tick();
    ++cycles;
  }
  node_.dram().link().transfer(1.0);
  for (unsigned i = 0; i < round_trip_cycles_; ++i) {
    node_.tick();
    ++cycles;
  }
  ++accesses_;
  return cycles;
}

u64 StatusRegisters::host_write(Reg r, u64 value) {
  const u64 cycles = round_trip();
  regs_.at(idx(r)) = value;
  return cycles;
}

u64 StatusRegisters::host_read(Reg r, u64& value) {
  const u64 cycles = round_trip();
  value = regs_.at(idx(r));
  return cycles;
}

u64 StatusRegisters::host_poll_until(u64 target, unsigned poll_interval,
                                     u64 max_cycles) {
  u64 total = 0;
  while (true) {
    u64 v = 0;
    total += host_read(Reg::Status, v);
    if (v == target) return total;
    for (unsigned i = 0; i < poll_interval; ++i) {
      node_.tick();
      ++total;
    }
    if (total > max_cycles) {
      throw SimError("status-register poll exceeded its cycle budget");
    }
  }
}

}  // namespace xd::machine
