// xdblas command-line runner: drive any of the simulated designs from the
// shell and get a paper-style report, without writing C++.
//
//   xdblas_cli dot    --n 4096 [--k 2]  [--bw-gbs 5.5] [--from-dram]
//   xdblas_cli gemv   --n 1024 [--k 4]  [--from-dram] [--arch tree|col]
//   xdblas_cli gemm   --n 256  [--k 8] [--m 8] [--b 64] [--l 1]
//   xdblas_cli spmxv  --n 1024 [--nnz-per-row 16] [--k 4]
//   xdblas_cli reduce --sets 200 --size 512 [--alpha 14]
//   xdblas_cli explore [--device XC2VP100]
//   xdblas_cli batch FILE [--out FILE]
//   xdblas_cli tune <op> [--n N] [--rows R --cols C] [--batch B]
//                        [--nnz-per-row Z] [--l L] [--arch tree|col]
//                        [--policy model|probe] [--banks B] [--from-dram]
//
// Tune mode runs the design autotuner (host/tuner.hpp) for one op+shape and
// prints the ranked candidate table: every enumerated design with its
// modeled area, clock, latency and bandwidth need, why the infeasible ones
// were pruned, and which design won. <op> is an op kind name (dot, gemv,
// gemm, gemm_multi, spmxv, ...). No operands are built — tuning is a pure
// function of the shape and machine model, so huge shapes are fine.
//
// Batch mode reads one op per line (dot / gemv / gemm / spmxv with the same
// flags as above; '#' comments and blank lines skipped), submits every job
// through the host runtime so independent simulations run concurrently on
// the worker pool, and prints one JSON record per job (JSONL) in input
// order — to stdout, or to --out FILE.
//
// A batch line may also be an op *graph* (a fused DAG plan — see
// docs/runtime.md "Graph plans & fusion"):
//
//   graph ap=gemv:n=96 pap=dot:n=96,b=@ap --from-dram [--seed S]
//
// Node specs (`name=kind[:key=val,...]`) come first, flags last. Kinds are
// dot (keys n, a, b), gemv (n, arch, x), and spmxv (n, nnz, x); an operand
// key whose value is `@name` feeds the named earlier node's result through
// a graph edge (the planner keeps the intermediate SRAM-resident when it
// fits), other operands are materialized from the line's seed, and keep=0
// marks a node as intermediate-only. The record carries one named result
// per node plus the fusion counters (fused_edges, shared_operands,
// staging_saved_cycles) and the aggregate report; a malformed graph —
// unknown ref, shape-mismatched edge, cycle — fails that line with a
// per-line "error" record and a nonzero exit, like any other batch error.
//
// Telemetry options (all commands):
//   --json               machine-readable report + phase spans + metrics on
//                        stdout instead of the human-readable table
//   --metrics-out FILE   write the metrics registry (.csv => CSV, else JSON)
//   --trace-out FILE     write a Chrome trace_event JSON (chrome://tracing /
//                        Perfetto); also enables event tracing in the run
//   --trace-filter STR   keep only trace events whose source contains STR
//   --flight-out FILE    write the flight recorder (last-N per-op trace
//                        contexts) as JSON; also dumped to stderr when a
//                        run dies with an error
//
// In batch mode the telemetry session is shared by every concurrent job:
// worker shards merge into it at op completion, so the metrics/trace/flight
// exports cover the whole batch and the Chrome trace shows one track per
// pool worker.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "xdblas.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "serve/proto.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

/// A malformed command line (junk flag value, overflowing number, ...).
/// Distinct from ConfigError so main() can answer with the usage text and
/// exit code 2, the argument-error convention — a simulation that *ran* and
/// failed still exits 1.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count(name) > 0; }
  /// Validated finite double; rejects junk like "--bw-gbs fast" and
  /// overflowing exponents.
  double num(const std::string& name, double dflt) const {
    const auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      throw UsageError(cat("--", name, " expects a number, got '", it->second,
                           "'"));
    }
    return v;
  }
  /// Validated non-negative integer; rejects junk like "--n -4" or "--n x"
  /// and values that overflow long long (e.g. --n 99999999999999999999).
  long long integer(const std::string& name, long long dflt) const {
    const auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      throw UsageError(cat("--", name, " expects an integer, got '",
                           it->second, "'"));
    }
    if (v < 0) {
      throw UsageError(cat("--", name, " must be non-negative, got ", v));
    }
    return v;
  }
  std::string str(const std::string& name, const std::string& dflt) const {
    const auto it = kv.find(name);
    return it == kv.end() ? dflt : it->second;
  }
};

/// Flags valid for every command.
const std::set<std::string> kCommonFlags = {
    "seed", "json", "metrics-out", "trace-out", "trace-filter", "flight-out"};

/// Flags that take no value; every other flag requires one.
const std::set<std::string> kBoolFlags = {"json", "from-dram"};

const std::map<std::string, std::set<std::string>> kCommandFlags = {
    {"dot", {"n", "k", "bw-gbs", "from-dram"}},
    {"gemv", {"n", "k", "from-dram", "arch"}},
    {"gemm", {"n", "k", "m", "b", "l"}},
    {"spmxv", {"n", "nnz-per-row", "k"}},
    {"reduce", {"sets", "size", "alpha"}},
    {"explore", {"device"}},
    {"batch", {"out"}},
    {"tune",
     {"n", "rows", "cols", "batch", "nnz-per-row", "l", "arch", "policy",
      "banks", "from-dram"}},
};

int usage() {
  std::fprintf(stderr,
               "usage: xdblas_cli <dot|gemv|gemm|spmxv|reduce|explore> "
               "[--n N] [--k K] ...\n"
               "       xdblas_cli batch FILE [--out FILE]\n"
               "       xdblas_cli tune <op> [--n N] [--rows R --cols C] "
               "[--l L] [--policy model|probe] [--banks B]\n"
               "       common flags: --seed S --json --metrics-out FILE "
               "--trace-out FILE --trace-filter STR --flight-out FILE\n"
               "       (see the file header for per-command options)\n");
  return 2;
}

/// Parse `--flag [value]` tokens into a.kv against an allowed-flag set;
/// returns false (after an stderr diagnostic) on an unknown flag, a stray
/// positional, or a missing value.
bool parse_flags(const std::vector<std::string>& tokens,
                 const std::string& command,
                 const std::set<std::string>& allowed, Args& a) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n",
                   tokens[i].c_str());
      return false;
    }
    const std::string key = tokens[i].substr(2);
    if (!kCommonFlags.count(key) && !allowed.count(key)) {
      std::fprintf(stderr, "error: unknown flag '--%s' for command '%s'\n",
                   key.c_str(), command.c_str());
      return false;
    }
    if (kBoolFlags.count(key)) {
      static const std::string kSet = "1";
      a.kv.insert_or_assign(key, kSet);
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      a.kv[key] = tokens[++i];
    } else {
      std::fprintf(stderr, "error: flag '--%s' expects a value\n", key.c_str());
      return false;
    }
  }
  return true;
}

/// Parse argv; returns false (after an stderr diagnostic) on an unknown
/// command, unknown flag, or stray positional argument.
bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) {
    std::fprintf(stderr, "error: no command given\n");
    return false;
  }
  a.command = argv[1];
  const auto cmd = kCommandFlags.find(a.command);
  if (cmd == kCommandFlags.end()) {
    std::fprintf(stderr, "error: unknown command '%s'\n", a.command.c_str());
    return false;
  }
  int first_flag = 2;
  if (a.command == "batch") {
    // One positional argument: the op file.
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: batch expects a file argument\n");
      return false;
    }
    a.kv["file"] = argv[2];
    first_flag = 3;
  } else if (a.command == "tune") {
    // One positional argument: the op kind to tune.
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: tune expects an op argument (dot, gemv, "
                           "gemm, ...)\n");
      return false;
    }
    a.kv["op"] = argv[2];
    first_flag = 3;
  }
  std::vector<std::string> tokens(argv + first_flag, argv + argc);
  return parse_flags(tokens, a.command, cmd->second, a);
}

void print_report(const host::PerfReport& r) {
  std::printf("design      : %s\n", r.design.c_str());
  std::printf("cycles      : %llu", static_cast<unsigned long long>(r.cycles));
  if (r.staging_cycles) {
    std::printf(" (staging %llu)",
                static_cast<unsigned long long>(r.staging_cycles));
  }
  std::printf("\nlatency     : %.4f ms at %.0f MHz\n", r.seconds() * 1e3,
              r.clock_mhz);
  std::printf("sustained   : %.1f MFLOPS (%.3f flops/cycle)\n",
              r.sustained_mflops(), r.flops_per_cycle());
  if (r.sram_words > 0) {
    std::printf("SRAM traffic: %.0f words (%.2f GB/s)\n", r.sram_words,
                r.sram_bytes_per_s() / 1e9);
  }
  if (r.dram_words > 0) {
    std::printf("DRAM traffic: %.0f words (%.1f MB/s)\n", r.dram_words,
                r.dram_bytes_per_s() / 1e6);
  }
  std::printf("stalls      : %llu\n",
              static_cast<unsigned long long>(r.stall_cycles));
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  // Flush stdio's buffer AND push the page cache to the device before
  // reporting success: a deferred ENOSPC (e.g. /dev/full) must flip the exit
  // code, not silently leave a truncated artifact that passes a fixture.
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fflush(f) == 0 && ok;
  if (ok && ::fsync(::fileno(f)) != 0 &&
      errno != EINVAL && errno != ENOTSUP && errno != ENOTTY) {
    ok = false;  // EINVAL/ENOTSUP/ENOTTY: pipes and special files can't sync
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) std::fprintf(stderr, "error: write to '%s' failed\n", path.c_str());
  return ok;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Emit the requested telemetry outputs; `report` may be null (reduce /
/// explore have no PerfReport). Returns false if any file write failed.
bool finish(const Args& args, telemetry::Session& tel,
            const host::PerfReport* report) {
  if (args.flag("json")) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("command", args.command);
    if (report) {
      w.key("report");
      w.raw(telemetry::report_to_json(*report));
    }
    // Per-phase cycle totals (first-appearance order), then the raw spans.
    w.key("phases");
    w.begin_object();
    std::set<std::string> seen;
    for (const auto& s : tel.spans().spans()) {
      if (seen.insert(s.name).second) {
        w.kv(s.name, tel.spans().total_cycles(s.name));
      }
    }
    w.end_object();
    w.key("spans");
    w.raw(telemetry::spans_to_json(tel.spans()));
    w.key("metrics");
    w.raw(telemetry::metrics_to_json(tel.metrics()));
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  }

  bool ok = true;
  if (args.flag("metrics-out")) {
    const std::string path = args.str("metrics-out", "");
    const std::string text = ends_with(path, ".csv")
                                 ? telemetry::metrics_to_csv(tel.metrics())
                                 : telemetry::metrics_to_json(tel.metrics());
    ok = write_file(path, text) && ok;
  }
  if (args.flag("trace-out")) {
    const double clock = report ? report->clock_mhz : 0.0;
    ok = write_file(args.str("trace-out", ""),
                    telemetry::chrome_trace_json(tel, clock,
                                                 args.str("trace-filter", ""))) &&
         ok;
  }
  if (args.flag("flight-out")) {
    ok = write_file(args.str("flight-out", ""),
                    telemetry::flight_to_json(tel.flight())) &&
         ok;
  }
  return ok;
}

/// One batch job: the parsed request (which owns the operands) plus the
/// per-job Context honoring the line's engine knobs and the pending future.
/// Lives in a deque so addresses stay stable while later lines parse.
struct BatchJob {
  serve::Request req;
  std::optional<host::Context> ctx;
  std::future<host::Outcome> fut;
  std::future<host::GraphOutcome> gfut;
};

/// `xdblas_cli batch FILE`: parse every line with the shared serve codec
/// (serve/proto.hpp — the same grammar and bounds xdblas_serve speaks),
/// submit them all through the runtime (independent simulations run
/// concurrently on the process-wide worker pool), then emit one JSON record
/// per job in input order. Unlike the server, the CLI honors per-line
/// engine knobs (--k/--b/...) by giving each job its own Context.
int run_batch(const Args& args) {
  const std::string path = args.str("file", "");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 1;
  }

  // One shared session for the whole batch when any telemetry output was
  // requested: concurrent jobs merge their worker shards into it, so the
  // exports aggregate every op and the Chrome trace gets per-worker tracks.
  const bool want_tel = args.flag("json") || args.flag("metrics-out") ||
                        args.flag("trace-out") || args.flag("flight-out");
  telemetry::Session session;
  if (args.flag("trace-out")) session.trace().set_enabled(true);

  const host::ContextConfig base;  // line flags land in each req.cfg
  std::deque<BatchJob> jobs;  // deque: stable addresses for OpDesc pointers
  std::string line;
  bool truncated = false;
  std::size_t line_no = 0;
  while (serve::read_bounded_line(in, line, truncated)) {
    ++line_no;
    if (!truncated && !serve::is_record_line(line)) continue;
    BatchJob& job = jobs.emplace_back();
    if (truncated) {
      // The bounded reader consumed the oversized tail; the record is
      // answered (and failed) without ever buffering the whole line.
      job.req.line = line_no;
      job.req.parse_error = serve::oversize_error();
      continue;
    }
    serve::parse_record(line, line_no, base, job.req);
  }

  for (auto& job : jobs) {
    if (!job.req.parse_error.empty()) continue;  // emitted as error record
    host::ContextConfig cfg = job.req.cfg;
    if (want_tel) cfg.telemetry = &session;  // shards merge on completion
    job.ctx.emplace(cfg);
    if (job.req.is_graph) {
      job.gfut = job.ctx->runtime().submit_graph(job.req.graph);
    } else {
      job.fut = job.ctx->runtime().submit(job.req.desc);
    }
  }

  std::string out;
  int rc = 0;
  for (auto& job : jobs) {
    try {
      if (!job.req.parse_error.empty()) throw ConfigError(job.req.parse_error);
      out += job.req.is_graph ? serve::graph_record(job.req, job.gfut.get())
                              : serve::outcome_record(job.req, job.fut.get());
    } catch (const std::exception& e) {
      out += serve::error_record(job.req, e.what());
      rc = 1;
    }
    out += '\n';
  }

  if (args.flag("out")) {
    if (!write_file(args.str("out", ""), out)) return 1;
  } else {
    std::fputs(out.c_str(), stdout);
    if (std::fflush(stdout) != 0) rc = rc ? rc : 1;
  }
  if (want_tel) {
    // Batch --json appends one aggregate summary record after the per-job
    // JSONL records (the writer emits a single line, keeping stdout JSONL).
    if (!finish(args, session, nullptr)) return 1;
  }
  return rc;
}

/// `xdblas_cli tune <op>`: run the design autotuner for one op+shape and
/// print the ranked candidate table (or, with --json, a machine-readable
/// record of every candidate).
int run_tune(const Args& args) {
  host::OpKind kind;
  if (!host::op_kind_from_name(args.str("op", ""), kind)) {
    throw UsageError(cat("unknown op '", args.str("op", ""),
                         "' (try dot, gemv, gemm, gemm_array, gemm_multi, "
                         "spmxv)"));
  }

  host::ContextConfig cfg;
  cfg.sram_banks = static_cast<unsigned>(args.integer("banks", 4));
  cfg.mm_l = static_cast<unsigned>(args.integer("l", 1));

  host::PlanKey key;
  key.kind = kind;
  const auto n = static_cast<std::size_t>(args.integer("n", 1024));
  key.n = n;
  key.rows = static_cast<std::size_t>(args.integer("rows", static_cast<long long>(n)));
  key.cols = static_cast<std::size_t>(args.integer("cols", static_cast<long long>(n)));
  key.batch = static_cast<std::size_t>(args.integer("batch", 0));
  key.placement = args.flag("from-dram") ? host::Placement::Dram
                                         : host::Placement::Sram;
  key.arch = args.str("arch", "tree") == "col" ? host::GemvArch::Column
                                               : host::GemvArch::Tree;
  if (!host::tune_policy_from_name(args.str("policy", "model"), key.tune) ||
      key.tune == host::TunePolicy::Fixed) {
    throw UsageError(cat("--policy expects 'model' or 'probe', got '",
                         args.str("policy", "model"), "'"));
  }

  const host::TuneResult tr = host::tune_op(cfg, key);

  if (args.flag("json")) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("command", args.command);
    w.kv("op", host::op_kind_name(kind));
    w.kv("policy", host::tune_policy_name(key.tune));
    w.kv("considered", static_cast<u64>(tr.considered));
    w.kv("feasible", static_cast<u64>(tr.feasible));
    w.kv("pruned", static_cast<u64>(tr.pruned));
    w.kv("probed", static_cast<u64>(tr.probed));
    w.kv("winner", tr.winner() ? tr.winner()->name() : std::string());
    w.key("candidates");
    w.begin_array();
    for (const auto& c : tr.ranked) {
      w.begin_object();
      w.kv("design", c.name());
      w.kv("feasible", c.feasible);
      w.kv("chosen", c.chosen);
      w.kv("slices", static_cast<u64>(c.area.slices));
      w.kv("clock_mhz", c.area.clock_mhz);
      w.kv("bram_words", c.bram_words);
      w.kv("model_cycles", c.model_cycles);
      w.kv("model_seconds", c.model_seconds);
      w.kv("required_words_per_cycle", c.required_words_per_cycle);
      if (c.probe_cycles > 0) w.kv("probe_cycles", c.probe_cycles);
      if (!c.why_not.empty()) w.kv("why_not", c.why_not);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return tr.winner() ? 0 : 1;
  }

  std::printf("tune %s (%s): %zu candidates, %zu feasible, %zu pruned",
              host::op_kind_name(kind), host::tune_policy_name(key.tune),
              tr.considered, tr.feasible, tr.pruned);
  if (tr.probed > 0) {
    std::printf(", %zu probed (%llu sim cycles)", tr.probed,
                static_cast<unsigned long long>(tr.probe_cycles));
  }
  std::printf("\n");
  TextTable table({"design", "status", "slices", "MHz", "cycles", "ms",
                   "words/cyc", "note"});
  for (const auto& c : tr.ranked) {
    table.row(c.name(),
              c.chosen ? "WINNER" : (c.feasible ? "ok" : "pruned"),
              static_cast<u64>(c.area.slices), TextTable::num(c.area.clock_mhz, 1),
              c.model_cycles, TextTable::num(c.model_seconds * 1e3, 4),
              TextTable::num(c.required_words_per_cycle, 3), c.why_not);
  }
  std::printf("%s", table.render().c_str());
  if (!tr.winner()) {
    std::fprintf(stderr, "error: no feasible design\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage();

  // One session serves all sinks (declared outside the try so the flight
  // recorder survives into the error handler for a post-mortem dump).
  telemetry::Session session;
  try {
    if (args.command == "batch") return run_batch(args);
    if (args.command == "tune") return run_tune(args);
    Rng rng(static_cast<u64>(args.integer("seed", 2005)));
    // Event tracing only turns on when a trace file was requested (emit
    // sites build strings the fast path avoids).
    if (args.flag("trace-out")) session.trace().set_enabled(true);
    const bool json = args.flag("json");

    host::PerfReport report;
    bool have_report = false;

    if (args.command == "dot") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 4096));
      host::ContextConfig cfg;
      cfg.dot_k = static_cast<unsigned>(args.integer("k", 2));
      cfg.dot_mem_bytes_per_s = args.num("bw-gbs", 5.5) * 1e9;
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      const auto src = args.flag("from-dram") ? host::Placement::Dram
                                              : host::Placement::Sram;
      const auto r = ctx.dot(rng.vector(n), rng.vector(n), src);
      if (!json) std::printf("dot(%zu) = %.12g\n", n, r.value);
      report = r.report;
      have_report = true;
    } else if (args.command == "gemv") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 1024));
      host::ContextConfig cfg;
      cfg.gemv_k = static_cast<unsigned>(args.integer("k", 4));
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      const auto arch = args.str("arch", "tree") == "col"
                            ? host::GemvArch::Column
                            : host::GemvArch::Tree;
      const auto src = args.flag("from-dram") ? host::Placement::Dram
                                              : host::Placement::Sram;
      const auto out = ctx.gemv(rng.matrix(n, n), n, n, rng.vector(n), src, arch);
      report = out.report;
      have_report = true;
    } else if (args.command == "gemm") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 256));
      host::ContextConfig cfg;
      cfg.mm_k = static_cast<unsigned>(args.integer("k", 8));
      cfg.mm_m = static_cast<unsigned>(args.integer("m", 8));
      cfg.mm_b = static_cast<std::size_t>(
          args.integer("b", static_cast<long long>(std::min<std::size_t>(512, n))));
      cfg.mm_l = static_cast<unsigned>(args.integer("l", 1));
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      report = cfg.mm_l > 1
                   ? ctx.gemm_multi(rng.matrix(n, n), rng.matrix(n, n), n).report
                   : ctx.gemm(rng.matrix(n, n), rng.matrix(n, n), n).report;
      have_report = true;
    } else if (args.command == "spmxv") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 1024));
      const std::size_t nnz =
          static_cast<std::size_t>(args.integer("nnz-per-row", 16));
      blas2::SpmxvConfig cfg;
      cfg.k = static_cast<unsigned>(args.integer("k", 4));
      cfg.telemetry = &session;
      blas2::SpmxvEngine engine(cfg);
      const auto m = blas2::make_uniform_sparse(n, n, nnz, 7);
      const auto out = engine.run(m, rng.vector(n));
      if (!json) {
        std::printf("spmxv %zux%zu, nnz=%zu (density %.2f%%)\n", n, n, m.nnz(),
                    100.0 * m.density());
      }
      report = out.report;
      have_report = true;
    } else if (args.command == "reduce") {
      const std::size_t sets = static_cast<std::size_t>(args.integer("sets", 200));
      const std::size_t size = static_cast<std::size_t>(args.integer("size", 512));
      const unsigned alpha = static_cast<unsigned>(args.integer("alpha", 14));
      require(sets >= 1 && size >= 1, "reduce needs --sets >= 1 and --size >= 1");
      reduce::ReductionCircuit c(alpha);
      if (session.trace().enabled()) c.attach_trace(&session.trace());
      std::size_t done = 0, si = 0, ei = 0;
      u64 cycles = 0;
      while (done < sets) {
        std::optional<reduce::Input> in;
        if (si < sets) {
          in = reduce::Input{fp::to_bits(rng.uniform(-1, 1)), ei + 1 == size};
        }
        const bool consumed = c.cycle(in);
        ++cycles;
        if (in && consumed && ++ei == size) {
          ei = 0;
          ++si;
        }
        if (c.take_result()) ++done;
      }
      session.phase("compute", cycles);
      c.publish(session.metrics(), "reduce.cli");
      if (!json) {
        std::printf("reduced %zu sets of %zu in %llu cycles "
                    "(inputs %zu, tail %llu, bound 2a^2 = %u)\n",
                    sets, size, static_cast<unsigned long long>(cycles),
                    sets * size,
                    static_cast<unsigned long long>(cycles - sets * size),
                    2 * alpha * alpha);
        std::printf("stalls %llu, peak buffer %zu (bound %u), adder util %.1f%%\n",
                    static_cast<unsigned long long>(c.stats().stall_cycles),
                    c.stats().peak_buffer_words, alpha * alpha,
                    100.0 * c.adder_utilization());
      }
    } else if (args.command == "explore") {
      const auto dev = machine::device_by_name(args.str("device", "XC2VP50"));
      machine::AreaModel area;
      std::printf("%s: %u slices, %llu BRAM words; max GEMM PEs %u "
                  "(standalone) / %u (XD1)\n",
                  dev.name.c_str(), dev.slices,
                  static_cast<unsigned long long>(dev.bram_words()),
                  area.max_mm_pes(dev, false), area.max_mm_pes(dev, true));
      for (const auto& p : model::figure9(area, dev)) {
        std::printf("  k=%2u: %5u slices, %.0f MHz, %.2f GFLOPS\n", p.k,
                    p.slices, p.clock_mhz, p.gflops);
      }
    }

    if (have_report && !json) print_report(report);
    if (!finish(args, session, have_report ? &report : nullptr)) return 1;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // Post-mortem: the ops leading up to the failure, to stderr and (when
    // requested) the --flight-out file.
    if (session.flight().total() > 0) {
      const std::string dump = telemetry::flight_to_json(session.flight());
      std::fprintf(stderr, "flight recorder: %s\n", dump.c_str());
      if (args.flag("flight-out")) {
        write_file(args.str("flight-out", ""), dump);
      }
    }
    return 1;
  }
  return 0;
}
