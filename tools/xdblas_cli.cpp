// xdblas command-line runner: drive any of the simulated designs from the
// shell and get a paper-style report, without writing C++.
//
//   xdblas_cli dot    --n 4096 [--k 2]  [--bw-gbs 5.5] [--from-dram]
//   xdblas_cli gemv   --n 1024 [--k 4]  [--from-dram] [--arch tree|col]
//   xdblas_cli gemm   --n 256  [--k 8] [--m 8] [--b 64] [--l 1]
//   xdblas_cli spmxv  --n 1024 [--nnz-per-row 16] [--k 4]
//   xdblas_cli reduce --sets 200 --size 512 [--alpha 14]
//   xdblas_cli explore [--device XC2VP100]
//
// Telemetry options (all commands):
//   --json               machine-readable report + phase spans + metrics on
//                        stdout instead of the human-readable table
//   --metrics-out FILE   write the metrics registry (.csv => CSV, else JSON)
//   --trace-out FILE     write a Chrome trace_event JSON (chrome://tracing /
//                        Perfetto); also enables event tracing in the run
//   --trace-filter STR   keep only trace events whose source contains STR
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "xdblas.hpp"
#include "common/random.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count(name) > 0; }
  double num(const std::string& name, double dflt) const {
    const auto it = kv.find(name);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  /// Validated non-negative integer; rejects junk like "--n -4" or "--n x".
  long long integer(const std::string& name, long long dflt) const {
    const auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      throw ConfigError(cat("--", name, " expects an integer, got '",
                            it->second, "'"));
    }
    if (v < 0) {
      throw ConfigError(cat("--", name, " must be non-negative, got ", v));
    }
    return v;
  }
  std::string str(const std::string& name, const std::string& dflt) const {
    const auto it = kv.find(name);
    return it == kv.end() ? dflt : it->second;
  }
};

/// Flags valid for every command.
const std::set<std::string> kCommonFlags = {
    "seed", "json", "metrics-out", "trace-out", "trace-filter"};

/// Flags that take no value; every other flag requires one.
const std::set<std::string> kBoolFlags = {"json", "from-dram"};

const std::map<std::string, std::set<std::string>> kCommandFlags = {
    {"dot", {"n", "k", "bw-gbs", "from-dram"}},
    {"gemv", {"n", "k", "from-dram", "arch"}},
    {"gemm", {"n", "k", "m", "b", "l"}},
    {"spmxv", {"n", "nnz-per-row", "k"}},
    {"reduce", {"sets", "size", "alpha"}},
    {"explore", {"device"}},
};

int usage() {
  std::fprintf(stderr,
               "usage: xdblas_cli <dot|gemv|gemm|spmxv|reduce|explore> "
               "[--n N] [--k K] ...\n"
               "       common flags: --seed S --json --metrics-out FILE "
               "--trace-out FILE --trace-filter STR\n"
               "       (see the file header for per-command options)\n");
  return 2;
}

/// Parse argv; returns false (after an stderr diagnostic) on an unknown
/// command, unknown flag, or stray positional argument.
bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) {
    std::fprintf(stderr, "error: no command given\n");
    return false;
  }
  a.command = argv[1];
  const auto cmd = kCommandFlags.find(a.command);
  if (cmd == kCommandFlags.end()) {
    std::fprintf(stderr, "error: unknown command '%s'\n", a.command.c_str());
    return false;
  }
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n", key.c_str());
      return false;
    }
    key = key.substr(2);
    if (!kCommonFlags.count(key) && !cmd->second.count(key)) {
      std::fprintf(stderr, "error: unknown flag '--%s' for command '%s'\n",
                   key.c_str(), a.command.c_str());
      return false;
    }
    if (kBoolFlags.count(key)) {
      a.kv[key] = "1";
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.kv[key] = argv[++i];
    } else {
      std::fprintf(stderr, "error: flag '--%s' expects a value\n", key.c_str());
      return false;
    }
  }
  return true;
}

void print_report(const host::PerfReport& r) {
  std::printf("design      : %s\n", r.design.c_str());
  std::printf("cycles      : %llu", static_cast<unsigned long long>(r.cycles));
  if (r.staging_cycles) {
    std::printf(" (staging %llu)",
                static_cast<unsigned long long>(r.staging_cycles));
  }
  std::printf("\nlatency     : %.4f ms at %.0f MHz\n", r.seconds() * 1e3,
              r.clock_mhz);
  std::printf("sustained   : %.1f MFLOPS (%.3f flops/cycle)\n",
              r.sustained_mflops(), r.flops_per_cycle());
  if (r.sram_words > 0) {
    std::printf("SRAM traffic: %.0f words (%.2f GB/s)\n", r.sram_words,
                r.sram_bytes_per_s() / 1e9);
  }
  if (r.dram_words > 0) {
    std::printf("DRAM traffic: %.0f words (%.1f MB/s)\n", r.dram_words,
                r.dram_bytes_per_s() / 1e6);
  }
  std::printf("stalls      : %llu\n",
              static_cast<unsigned long long>(r.stall_cycles));
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "error: short write to '%s'\n", path.c_str());
  return ok;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Emit the requested telemetry outputs; `report` may be null (reduce /
/// explore have no PerfReport). Returns false if any file write failed.
bool finish(const Args& args, telemetry::Session& tel,
            const host::PerfReport* report) {
  if (args.flag("json")) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("command", args.command);
    if (report) {
      w.key("report");
      w.raw(telemetry::report_to_json(*report));
    }
    // Per-phase cycle totals (first-appearance order), then the raw spans.
    w.key("phases");
    w.begin_object();
    std::set<std::string> seen;
    for (const auto& s : tel.spans().spans()) {
      if (seen.insert(s.name).second) {
        w.kv(s.name, tel.spans().total_cycles(s.name));
      }
    }
    w.end_object();
    w.key("spans");
    w.raw(telemetry::spans_to_json(tel.spans()));
    w.key("metrics");
    w.raw(telemetry::metrics_to_json(tel.metrics()));
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  }

  bool ok = true;
  if (args.flag("metrics-out")) {
    const std::string path = args.str("metrics-out", "");
    const std::string text = ends_with(path, ".csv")
                                 ? telemetry::metrics_to_csv(tel.metrics())
                                 : telemetry::metrics_to_json(tel.metrics());
    ok = write_file(path, text) && ok;
  }
  if (args.flag("trace-out")) {
    const double clock = report ? report->clock_mhz : 0.0;
    ok = write_file(args.str("trace-out", ""),
                    telemetry::chrome_trace_json(tel, clock,
                                                 args.str("trace-filter", ""))) &&
         ok;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage();

  try {
    Rng rng(static_cast<u64>(args.integer("seed", 2005)));
    // One session serves all sinks; event tracing only turns on when a trace
    // file was requested (emit sites build strings the fast path avoids).
    telemetry::Session session;
    if (args.flag("trace-out")) session.trace().set_enabled(true);
    const bool json = args.flag("json");

    host::PerfReport report;
    bool have_report = false;

    if (args.command == "dot") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 4096));
      host::ContextConfig cfg;
      cfg.dot_k = static_cast<unsigned>(args.integer("k", 2));
      cfg.dot_mem_bytes_per_s = args.num("bw-gbs", 5.5) * 1e9;
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      const auto src = args.flag("from-dram") ? host::Placement::Dram
                                              : host::Placement::Sram;
      const auto r = ctx.dot(rng.vector(n), rng.vector(n), src);
      if (!json) std::printf("dot(%zu) = %.12g\n", n, r.value);
      report = r.report;
      have_report = true;
    } else if (args.command == "gemv") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 1024));
      host::ContextConfig cfg;
      cfg.gemv_k = static_cast<unsigned>(args.integer("k", 4));
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      const auto arch = args.str("arch", "tree") == "col"
                            ? host::GemvArch::Column
                            : host::GemvArch::Tree;
      const auto src = args.flag("from-dram") ? host::Placement::Dram
                                              : host::Placement::Sram;
      const auto out = ctx.gemv(rng.matrix(n, n), n, n, rng.vector(n), src, arch);
      report = out.report;
      have_report = true;
    } else if (args.command == "gemm") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 256));
      host::ContextConfig cfg;
      cfg.mm_k = static_cast<unsigned>(args.integer("k", 8));
      cfg.mm_m = static_cast<unsigned>(args.integer("m", 8));
      cfg.mm_b = static_cast<std::size_t>(
          args.integer("b", static_cast<long long>(std::min<std::size_t>(512, n))));
      cfg.mm_l = static_cast<unsigned>(args.integer("l", 1));
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      report = cfg.mm_l > 1
                   ? ctx.gemm_multi(rng.matrix(n, n), rng.matrix(n, n), n).report
                   : ctx.gemm(rng.matrix(n, n), rng.matrix(n, n), n).report;
      have_report = true;
    } else if (args.command == "spmxv") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 1024));
      const std::size_t nnz =
          static_cast<std::size_t>(args.integer("nnz-per-row", 16));
      blas2::SpmxvConfig cfg;
      cfg.k = static_cast<unsigned>(args.integer("k", 4));
      cfg.telemetry = &session;
      blas2::SpmxvEngine engine(cfg);
      const auto m = blas2::make_uniform_sparse(n, n, nnz, 7);
      const auto out = engine.run(m, rng.vector(n));
      if (!json) {
        std::printf("spmxv %zux%zu, nnz=%zu (density %.2f%%)\n", n, n, m.nnz(),
                    100.0 * m.density());
      }
      report = out.report;
      have_report = true;
    } else if (args.command == "reduce") {
      const std::size_t sets = static_cast<std::size_t>(args.integer("sets", 200));
      const std::size_t size = static_cast<std::size_t>(args.integer("size", 512));
      const unsigned alpha = static_cast<unsigned>(args.integer("alpha", 14));
      require(sets >= 1 && size >= 1, "reduce needs --sets >= 1 and --size >= 1");
      reduce::ReductionCircuit c(alpha);
      if (session.trace().enabled()) c.attach_trace(&session.trace());
      std::size_t done = 0, si = 0, ei = 0;
      u64 cycles = 0;
      while (done < sets) {
        std::optional<reduce::Input> in;
        if (si < sets) {
          in = reduce::Input{fp::to_bits(rng.uniform(-1, 1)), ei + 1 == size};
        }
        const bool consumed = c.cycle(in);
        ++cycles;
        if (in && consumed && ++ei == size) {
          ei = 0;
          ++si;
        }
        if (c.take_result()) ++done;
      }
      session.phase("compute", cycles);
      c.publish(session.metrics(), "reduce.cli");
      if (!json) {
        std::printf("reduced %zu sets of %zu in %llu cycles "
                    "(inputs %zu, tail %llu, bound 2a^2 = %u)\n",
                    sets, size, static_cast<unsigned long long>(cycles),
                    sets * size,
                    static_cast<unsigned long long>(cycles - sets * size),
                    2 * alpha * alpha);
        std::printf("stalls %llu, peak buffer %zu (bound %u), adder util %.1f%%\n",
                    static_cast<unsigned long long>(c.stats().stall_cycles),
                    c.stats().peak_buffer_words, alpha * alpha,
                    100.0 * c.adder_utilization());
      }
    } else if (args.command == "explore") {
      const auto dev = machine::device_by_name(args.str("device", "XC2VP50"));
      machine::AreaModel area;
      std::printf("%s: %u slices, %llu BRAM words; max GEMM PEs %u "
                  "(standalone) / %u (XD1)\n",
                  dev.name.c_str(), dev.slices,
                  static_cast<unsigned long long>(dev.bram_words()),
                  area.max_mm_pes(dev, false), area.max_mm_pes(dev, true));
      for (const auto& p : model::figure9(area, dev)) {
        std::printf("  k=%2u: %5u slices, %.0f MHz, %.2f GFLOPS\n", p.k,
                    p.slices, p.clock_mhz, p.gflops);
      }
    }

    if (have_report && !json) print_report(report);
    if (!finish(args, session, have_report ? &report : nullptr)) return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
