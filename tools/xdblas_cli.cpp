// xdblas command-line runner: drive any of the simulated designs from the
// shell and get a paper-style report, without writing C++.
//
//   xdblas_cli dot    --n 4096 [--k 2]  [--bw-gbs 5.5]
//   xdblas_cli gemv   --n 1024 [--k 4]  [--from-dram] [--arch tree|col]
//   xdblas_cli gemm   --n 256  [--k 8] [--m 8] [--b 64] [--l 1]
//   xdblas_cli spmxv  --n 1024 [--nnz-per-row 16] [--k 4]
//   xdblas_cli reduce --sets 200 --size 512 [--alpha 14]
//   xdblas_cli explore [--device XC2VP100]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "xdblas.hpp"
#include "common/random.hpp"

using namespace xd;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count(name) > 0; }
  double num(const std::string& name, double dflt) const {
    const auto it = kv.find(name);
    return it == kv.end() ? dflt : std::strtod(it->second.c_str(), nullptr);
  }
  std::string str(const std::string& name, const std::string& dflt) const {
    const auto it = kv.find(name);
    return it == kv.end() ? dflt : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

void print_report(const host::PerfReport& r) {
  std::printf("design      : %s\n", r.design.c_str());
  std::printf("cycles      : %llu", static_cast<unsigned long long>(r.cycles));
  if (r.staging_cycles) {
    std::printf(" (staging %llu)",
                static_cast<unsigned long long>(r.staging_cycles));
  }
  std::printf("\nlatency     : %.4f ms at %.0f MHz\n", r.seconds() * 1e3,
              r.clock_mhz);
  std::printf("sustained   : %.1f MFLOPS (%.3f flops/cycle)\n",
              r.sustained_mflops(), r.flops_per_cycle());
  if (r.sram_words > 0) {
    std::printf("SRAM traffic: %.0f words (%.2f GB/s)\n", r.sram_words,
                r.sram_bytes_per_s() / 1e9);
  }
  if (r.dram_words > 0) {
    std::printf("DRAM traffic: %.0f words (%.1f MB/s)\n", r.dram_words,
                r.dram_bytes_per_s() / 1e6);
  }
  std::printf("stalls      : %llu\n",
              static_cast<unsigned long long>(r.stall_cycles));
}

int usage() {
  std::fprintf(stderr,
               "usage: xdblas_cli <dot|gemv|gemm|spmxv|reduce|explore> "
               "[--n N] [--k K] ...  (see the file header for options)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  Rng rng(static_cast<u64>(args.num("seed", 2005)));

  try {
    if (args.command == "dot") {
      const std::size_t n = static_cast<std::size_t>(args.num("n", 4096));
      host::ContextConfig cfg;
      cfg.dot_k = static_cast<unsigned>(args.num("k", 2));
      cfg.dot_mem_bytes_per_s = args.num("bw-gbs", 5.5) * 1e9;
      host::Context ctx(cfg);
      const auto r = ctx.dot(rng.vector(n), rng.vector(n));
      std::printf("dot(%zu) = %.12g\n", n, r.value);
      print_report(r.report);
    } else if (args.command == "gemv") {
      const std::size_t n = static_cast<std::size_t>(args.num("n", 1024));
      host::ContextConfig cfg;
      cfg.gemv_k = static_cast<unsigned>(args.num("k", 4));
      host::Context ctx(cfg);
      const auto arch = args.str("arch", "tree") == "col"
                            ? host::GemvArch::Column
                            : host::GemvArch::Tree;
      const auto src = args.flag("from-dram") ? host::Placement::Dram
                                              : host::Placement::Sram;
      const auto out = ctx.gemv(rng.matrix(n, n), n, n, rng.vector(n), src, arch);
      print_report(out.report);
    } else if (args.command == "gemm") {
      const std::size_t n = static_cast<std::size_t>(args.num("n", 256));
      host::ContextConfig cfg;
      cfg.mm_k = static_cast<unsigned>(args.num("k", 8));
      cfg.mm_m = static_cast<unsigned>(args.num("m", 8));
      cfg.mm_b = static_cast<std::size_t>(args.num("b", std::min<double>(512, n)));
      cfg.mm_l = static_cast<unsigned>(args.num("l", 1));
      host::Context ctx(cfg);
      const auto out = cfg.mm_l > 1 ? [&] {
        const auto multi = ctx.gemm_multi(rng.matrix(n, n), rng.matrix(n, n), n);
        return multi.report;
      }()
                                    : ctx.gemm(rng.matrix(n, n), rng.matrix(n, n), n).report;
      print_report(out);
    } else if (args.command == "spmxv") {
      const std::size_t n = static_cast<std::size_t>(args.num("n", 1024));
      const std::size_t nnz = static_cast<std::size_t>(args.num("nnz-per-row", 16));
      blas2::SpmxvConfig cfg;
      cfg.k = static_cast<unsigned>(args.num("k", 4));
      blas2::SpmxvEngine engine(cfg);
      const auto m = blas2::make_uniform_sparse(n, n, nnz, 7);
      const auto out = engine.run(m, rng.vector(n));
      std::printf("spmxv %zux%zu, nnz=%zu (density %.2f%%)\n", n, n, m.nnz(),
                  100.0 * m.density());
      print_report(out.report);
    } else if (args.command == "reduce") {
      const std::size_t sets = static_cast<std::size_t>(args.num("sets", 200));
      const std::size_t size = static_cast<std::size_t>(args.num("size", 512));
      const unsigned alpha = static_cast<unsigned>(args.num("alpha", 14));
      reduce::ReductionCircuit c(alpha);
      std::size_t done = 0, si = 0, ei = 0;
      u64 cycles = 0;
      while (done < sets) {
        std::optional<reduce::Input> in;
        if (si < sets) {
          in = reduce::Input{fp::to_bits(rng.uniform(-1, 1)), ei + 1 == size};
        }
        const bool consumed = c.cycle(in);
        ++cycles;
        if (in && consumed && ++ei == size) {
          ei = 0;
          ++si;
        }
        if (c.take_result()) ++done;
      }
      std::printf("reduced %zu sets of %zu in %llu cycles "
                  "(inputs %zu, tail %llu, bound 2a^2 = %u)\n",
                  sets, size, static_cast<unsigned long long>(cycles),
                  sets * size,
                  static_cast<unsigned long long>(cycles - sets * size),
                  2 * alpha * alpha);
      std::printf("stalls %llu, peak buffer %zu (bound %u), adder util %.1f%%\n",
                  static_cast<unsigned long long>(c.stats().stall_cycles),
                  c.stats().peak_buffer_words, alpha * alpha,
                  100.0 * c.adder_utilization());
    } else if (args.command == "explore") {
      const auto dev = machine::device_by_name(args.str("device", "XC2VP50"));
      machine::AreaModel area;
      std::printf("%s: %u slices, %llu BRAM words; max GEMM PEs %u "
                  "(standalone) / %u (XD1)\n",
                  dev.name.c_str(), dev.slices,
                  static_cast<unsigned long long>(dev.bram_words()),
                  area.max_mm_pes(dev, false), area.max_mm_pes(dev, true));
      for (const auto& p : model::figure9(area, dev)) {
        std::printf("  k=%2u: %5u slices, %.0f MHz, %.2f GFLOPS\n", p.k,
                    p.slices, p.clock_mhz, p.gflops);
      }
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
