// xdblas command-line runner: drive any of the simulated designs from the
// shell and get a paper-style report, without writing C++.
//
//   xdblas_cli dot    --n 4096 [--k 2]  [--bw-gbs 5.5] [--from-dram]
//   xdblas_cli gemv   --n 1024 [--k 4]  [--from-dram] [--arch tree|col]
//   xdblas_cli gemm   --n 256  [--k 8] [--m 8] [--b 64] [--l 1]
//   xdblas_cli spmxv  --n 1024 [--nnz-per-row 16] [--k 4]
//   xdblas_cli reduce --sets 200 --size 512 [--alpha 14]
//   xdblas_cli explore [--device XC2VP100]
//   xdblas_cli batch FILE [--out FILE]
//   xdblas_cli tune <op> [--n N] [--rows R --cols C] [--batch B]
//                        [--nnz-per-row Z] [--l L] [--arch tree|col]
//                        [--policy model|probe] [--banks B] [--from-dram]
//
// Tune mode runs the design autotuner (host/tuner.hpp) for one op+shape and
// prints the ranked candidate table: every enumerated design with its
// modeled area, clock, latency and bandwidth need, why the infeasible ones
// were pruned, and which design won. <op> is an op kind name (dot, gemv,
// gemm, gemm_multi, spmxv, ...). No operands are built — tuning is a pure
// function of the shape and machine model, so huge shapes are fine.
//
// Batch mode reads one op per line (dot / gemv / gemm / spmxv with the same
// flags as above; '#' comments and blank lines skipped), submits every job
// through the host runtime so independent simulations run concurrently on
// the worker pool, and prints one JSON record per job (JSONL) in input
// order — to stdout, or to --out FILE.
//
// A batch line may also be an op *graph* (a fused DAG plan — see
// docs/runtime.md "Graph plans & fusion"):
//
//   graph ap=gemv:n=96 pap=dot:n=96,b=@ap --from-dram [--seed S]
//
// Node specs (`name=kind[:key=val,...]`) come first, flags last. Kinds are
// dot (keys n, a, b), gemv (n, arch, x), and spmxv (n, nnz, x); an operand
// key whose value is `@name` feeds the named earlier node's result through
// a graph edge (the planner keeps the intermediate SRAM-resident when it
// fits), other operands are materialized from the line's seed, and keep=0
// marks a node as intermediate-only. The record carries one named result
// per node plus the fusion counters (fused_edges, shared_operands,
// staging_saved_cycles) and the aggregate report; a malformed graph —
// unknown ref, shape-mismatched edge, cycle — fails that line with a
// per-line "error" record and a nonzero exit, like any other batch error.
//
// Telemetry options (all commands):
//   --json               machine-readable report + phase spans + metrics on
//                        stdout instead of the human-readable table
//   --metrics-out FILE   write the metrics registry (.csv => CSV, else JSON)
//   --trace-out FILE     write a Chrome trace_event JSON (chrome://tracing /
//                        Perfetto); also enables event tracing in the run
//   --trace-filter STR   keep only trace events whose source contains STR
//   --flight-out FILE    write the flight recorder (last-N per-op trace
//                        contexts) as JSON; also dumped to stderr when a
//                        run dies with an error
//
// In batch mode the telemetry session is shared by every concurrent job:
// worker shards merge into it at op completion, so the metrics/trace/flight
// exports cover the whole batch and the Chrome trace shows one track per
// pool worker.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "xdblas.hpp"
#include "common/random.hpp"
#include "common/table.hpp"
#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

/// A malformed command line (junk flag value, overflowing number, ...).
/// Distinct from ConfigError so main() can answer with the usage text and
/// exit code 2, the argument-error convention — a simulation that *ran* and
/// failed still exits 1.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count(name) > 0; }
  /// Validated finite double; rejects junk like "--bw-gbs fast" and
  /// overflowing exponents.
  double num(const std::string& name, double dflt) const {
    const auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      throw UsageError(cat("--", name, " expects a number, got '", it->second,
                           "'"));
    }
    return v;
  }
  /// Validated non-negative integer; rejects junk like "--n -4" or "--n x"
  /// and values that overflow long long (e.g. --n 99999999999999999999).
  long long integer(const std::string& name, long long dflt) const {
    const auto it = kv.find(name);
    if (it == kv.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE) {
      throw UsageError(cat("--", name, " expects an integer, got '",
                           it->second, "'"));
    }
    if (v < 0) {
      throw UsageError(cat("--", name, " must be non-negative, got ", v));
    }
    return v;
  }
  std::string str(const std::string& name, const std::string& dflt) const {
    const auto it = kv.find(name);
    return it == kv.end() ? dflt : it->second;
  }
};

/// Flags valid for every command.
const std::set<std::string> kCommonFlags = {
    "seed", "json", "metrics-out", "trace-out", "trace-filter", "flight-out"};

/// Flags that take no value; every other flag requires one.
const std::set<std::string> kBoolFlags = {"json", "from-dram"};

const std::map<std::string, std::set<std::string>> kCommandFlags = {
    {"dot", {"n", "k", "bw-gbs", "from-dram"}},
    {"gemv", {"n", "k", "from-dram", "arch"}},
    {"gemm", {"n", "k", "m", "b", "l"}},
    {"spmxv", {"n", "nnz-per-row", "k"}},
    {"reduce", {"sets", "size", "alpha"}},
    {"explore", {"device"}},
    {"batch", {"out"}},
    {"tune",
     {"n", "rows", "cols", "batch", "nnz-per-row", "l", "arch", "policy",
      "banks", "from-dram"}},
};

int usage() {
  std::fprintf(stderr,
               "usage: xdblas_cli <dot|gemv|gemm|spmxv|reduce|explore> "
               "[--n N] [--k K] ...\n"
               "       xdblas_cli batch FILE [--out FILE]\n"
               "       xdblas_cli tune <op> [--n N] [--rows R --cols C] "
               "[--l L] [--policy model|probe] [--banks B]\n"
               "       common flags: --seed S --json --metrics-out FILE "
               "--trace-out FILE --trace-filter STR --flight-out FILE\n"
               "       (see the file header for per-command options)\n");
  return 2;
}

/// Parse `--flag [value]` tokens into a.kv against an allowed-flag set;
/// returns false (after an stderr diagnostic) on an unknown flag, a stray
/// positional, or a missing value.
bool parse_flags(const std::vector<std::string>& tokens,
                 const std::string& command,
                 const std::set<std::string>& allowed, Args& a) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected argument '%s'\n",
                   tokens[i].c_str());
      return false;
    }
    const std::string key = tokens[i].substr(2);
    if (!kCommonFlags.count(key) && !allowed.count(key)) {
      std::fprintf(stderr, "error: unknown flag '--%s' for command '%s'\n",
                   key.c_str(), command.c_str());
      return false;
    }
    if (kBoolFlags.count(key)) {
      static const std::string kSet = "1";
      a.kv.insert_or_assign(key, kSet);
    } else if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      a.kv[key] = tokens[++i];
    } else {
      std::fprintf(stderr, "error: flag '--%s' expects a value\n", key.c_str());
      return false;
    }
  }
  return true;
}

/// Parse argv; returns false (after an stderr diagnostic) on an unknown
/// command, unknown flag, or stray positional argument.
bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) {
    std::fprintf(stderr, "error: no command given\n");
    return false;
  }
  a.command = argv[1];
  const auto cmd = kCommandFlags.find(a.command);
  if (cmd == kCommandFlags.end()) {
    std::fprintf(stderr, "error: unknown command '%s'\n", a.command.c_str());
    return false;
  }
  int first_flag = 2;
  if (a.command == "batch") {
    // One positional argument: the op file.
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: batch expects a file argument\n");
      return false;
    }
    a.kv["file"] = argv[2];
    first_flag = 3;
  } else if (a.command == "tune") {
    // One positional argument: the op kind to tune.
    if (argc < 3 || std::string(argv[2]).rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: tune expects an op argument (dot, gemv, "
                           "gemm, ...)\n");
      return false;
    }
    a.kv["op"] = argv[2];
    first_flag = 3;
  }
  std::vector<std::string> tokens(argv + first_flag, argv + argc);
  return parse_flags(tokens, a.command, cmd->second, a);
}

void print_report(const host::PerfReport& r) {
  std::printf("design      : %s\n", r.design.c_str());
  std::printf("cycles      : %llu", static_cast<unsigned long long>(r.cycles));
  if (r.staging_cycles) {
    std::printf(" (staging %llu)",
                static_cast<unsigned long long>(r.staging_cycles));
  }
  std::printf("\nlatency     : %.4f ms at %.0f MHz\n", r.seconds() * 1e3,
              r.clock_mhz);
  std::printf("sustained   : %.1f MFLOPS (%.3f flops/cycle)\n",
              r.sustained_mflops(), r.flops_per_cycle());
  if (r.sram_words > 0) {
    std::printf("SRAM traffic: %.0f words (%.2f GB/s)\n", r.sram_words,
                r.sram_bytes_per_s() / 1e9);
  }
  if (r.dram_words > 0) {
    std::printf("DRAM traffic: %.0f words (%.1f MB/s)\n", r.dram_words,
                r.dram_bytes_per_s() / 1e6);
  }
  std::printf("stalls      : %llu\n",
              static_cast<unsigned long long>(r.stall_cycles));
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "error: short write to '%s'\n", path.c_str());
  return ok;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Emit the requested telemetry outputs; `report` may be null (reduce /
/// explore have no PerfReport). Returns false if any file write failed.
bool finish(const Args& args, telemetry::Session& tel,
            const host::PerfReport* report) {
  if (args.flag("json")) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("command", args.command);
    if (report) {
      w.key("report");
      w.raw(telemetry::report_to_json(*report));
    }
    // Per-phase cycle totals (first-appearance order), then the raw spans.
    w.key("phases");
    w.begin_object();
    std::set<std::string> seen;
    for (const auto& s : tel.spans().spans()) {
      if (seen.insert(s.name).second) {
        w.kv(s.name, tel.spans().total_cycles(s.name));
      }
    }
    w.end_object();
    w.key("spans");
    w.raw(telemetry::spans_to_json(tel.spans()));
    w.key("metrics");
    w.raw(telemetry::metrics_to_json(tel.metrics()));
    w.end_object();
    std::printf("%s\n", w.str().c_str());
  }

  bool ok = true;
  if (args.flag("metrics-out")) {
    const std::string path = args.str("metrics-out", "");
    const std::string text = ends_with(path, ".csv")
                                 ? telemetry::metrics_to_csv(tel.metrics())
                                 : telemetry::metrics_to_json(tel.metrics());
    ok = write_file(path, text) && ok;
  }
  if (args.flag("trace-out")) {
    const double clock = report ? report->clock_mhz : 0.0;
    ok = write_file(args.str("trace-out", ""),
                    telemetry::chrome_trace_json(tel, clock,
                                                 args.str("trace-filter", ""))) &&
         ok;
  }
  if (args.flag("flight-out")) {
    ok = write_file(args.str("flight-out", ""),
                    telemetry::flight_to_json(tel.flight())) &&
         ok;
  }
  return ok;
}

/// One parsed batch line. The job owns its operands and Context so the
/// OpDesc's non-owning pointers stay valid until the future is consumed.
/// A `graph` line fills `graph` instead of `desc` (operands live in the
/// deque pools — stable addresses across growth); for those, `n` counts
/// nodes rather than a problem size.
struct BatchJob {
  std::size_t line = 0;
  std::string command;
  std::size_t n = 0;
  host::Context ctx;
  std::vector<double> a, b, x;
  blas2::CrsMatrix sparse;
  host::OpDesc desc;
  std::future<host::Outcome> fut;

  bool is_graph = false;
  host::GraphDesc graph;
  std::deque<std::vector<double>> pool;
  std::deque<blas2::CrsMatrix> sparse_pool;
  std::future<host::GraphOutcome> gfut;
  /// Nonempty: the line failed at parse time. The job is never submitted;
  /// the emit loop turns this into a per-line "error" record (same exit
  /// path as a runtime failure, so one bad graph can't kill the batch).
  std::string parse_error;

  explicit BatchJob(const host::ContextConfig& cfg) : ctx(cfg) {}
};

/// Parse one `graph` node spec (`name=kind[:key=val,...]`) into job.graph.
/// An operand key valued `@name` becomes a graph edge from the named
/// earlier node; absent operand keys are materialized from `rng`. Returns
/// an error message ("" on success) instead of throwing so a malformed
/// graph becomes a per-line error record, not a dead batch.
std::string add_graph_node(const std::string& spec, host::Placement src,
                           Rng& rng, BatchJob& job) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    return cat("node spec '", spec, "' is not name=kind[:key=val,...]");
  }
  const std::string name = spec.substr(0, eq);
  if (name.front() == '@' || name.find(':') != std::string::npos) {
    return cat("node name '", name, "' may not contain '@' or ':'");
  }
  for (const auto& nd : job.graph.nodes) {
    if (nd.name == name) return cat("duplicate node name '", name, "'");
  }

  std::string kind = spec.substr(eq + 1);
  std::map<std::string, std::string> kv;
  if (const auto colon = kind.find(':'); colon != std::string::npos) {
    std::istringstream opts(kind.substr(colon + 1));
    kind = kind.substr(0, colon);
    std::string item;
    while (std::getline(opts, item, ',')) {
      const auto e = item.find('=');
      if (e == std::string::npos || e == 0 || e + 1 >= item.size()) {
        return cat("node '", name, "': bad option '", item,
                   "' (want key=val)");
      }
      kv[item.substr(0, e)] = item.substr(e + 1);
    }
  }

  static const std::map<std::string, std::set<std::string>> kNodeKeys = {
      {"dot", {"n", "a", "b", "keep"}},
      {"gemv", {"n", "arch", "x", "keep"}},
      {"spmxv", {"n", "nnz", "x", "keep"}},
  };
  const auto keys = kNodeKeys.find(kind);
  if (keys == kNodeKeys.end()) {
    return cat("node '", name, "': graph nodes support dot/gemv/spmxv, got '",
               kind, "'");
  }
  for (const auto& [k, v] : kv) {
    if (!keys->second.count(k)) {
      return cat("node '", name, "': unknown key '", k, "' for ", kind);
    }
  }

  auto size_of = [&](const std::string& key, std::size_t dflt,
                     std::size_t& out) -> std::string {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      out = dflt;
      return "";
    }
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0' || errno == ERANGE ||
        v <= 0) {
      return cat("node '", name, "': ", key,
                 " expects a positive integer, got '", it->second, "'");
    }
    out = static_cast<std::size_t>(v);
    return "";
  };

  host::GraphNode node;
  node.name = name;
  if (const auto it = kv.find("keep"); it != kv.end()) {
    if (it->second != "0" && it->second != "1") {
      return cat("node '", name, "': keep expects 0 or 1");
    }
    node.keep = it->second == "1";
  }

  // Resolve an operand key: `@name` feeds the named earlier node's result
  // through an edge (the pointer stays null for the runtime to patch),
  // anything else is rejected — batch operands are seeded, never literal.
  const std::size_t self = job.graph.nodes.size();
  auto operand = [&](const std::string& key, host::OperandSlot slot,
                     std::size_t len,
                     const std::vector<double>*& field) -> std::string {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      field = &job.pool.emplace_back(rng.vector(len));
      return "";
    }
    if (it->second.empty() || it->second.front() != '@') {
      return cat("node '", name, "': ", key,
                 " expects '@node' (operands are seeded, not literal), got '",
                 it->second, "'");
    }
    const std::string ref = it->second.substr(1);
    for (std::size_t i = 0; i < self; ++i) {
      if (job.graph.nodes[i].name == ref) {
        job.graph.edges.push_back({i, self, slot});
        field = nullptr;
        return "";
      }
    }
    return cat("node '", name, "': unknown node '@", ref,
               "' (refs must name an earlier node on the line)");
  };

  host::OpDesc& d = node.desc;
  std::size_t n = 0;
  std::string err;
  if (!(err = size_of("n", 256, n)).empty()) return err;
  if (kind == "dot") {
    d.kind = host::OpKind::Dot;
    d.placement = src;
    d.cols = n;
    if (!(err = operand("a", host::OperandSlot::A, n, d.a)).empty()) return err;
    if (!(err = operand("b", host::OperandSlot::B, n, d.b)).empty()) return err;
  } else if (kind == "gemv") {
    const std::string arch = kv.count("arch") ? kv.at("arch") : "tree";
    if (arch != "tree" && arch != "col") {
      return cat("node '", name, "': arch expects tree or col, got '", arch,
                 "'");
    }
    d.kind = host::OpKind::Gemv;
    d.placement = src;
    d.arch = arch == "col" ? host::GemvArch::Column : host::GemvArch::Tree;
    d.rows = d.cols = n;
    d.a = &job.pool.emplace_back(rng.matrix(n, n));
    if (!(err = operand("x", host::OperandSlot::X, n, d.x)).empty()) return err;
  } else {  // spmxv
    std::size_t nnz = 0;
    if (!(err = size_of("nnz", 4, nnz)).empty()) return err;
    d.kind = host::OpKind::Spmxv;
    d.rows = d.cols = n;
    d.sparse =
        &job.sparse_pool.emplace_back(blas2::make_uniform_sparse(n, n, nnz, 7));
    if (!(err = operand("x", host::OperandSlot::X, n, d.x)).empty()) return err;
  }
  job.graph.nodes.push_back(std::move(node));
  return "";
}

/// `xdblas_cli batch FILE`: parse every line into a BatchJob, submit them
/// all through the runtime (they share the process-wide worker pool, so
/// independent simulations run concurrently), then emit one JSON record per
/// job in input order.
int run_batch(const Args& args) {
  const std::string path = args.str("file", "");
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open '%s'\n", path.c_str());
    return 1;
  }

  // One shared session for the whole batch when any telemetry output was
  // requested: concurrent jobs merge their worker shards into it, so the
  // exports aggregate every op and the Chrome trace gets per-worker tracks.
  const bool want_tel = args.flag("json") || args.flag("metrics-out") ||
                        args.flag("trace-out") || args.flag("flight-out");
  telemetry::Session session;
  if (args.flag("trace-out")) session.trace().set_enabled(true);

  static const std::set<std::string> kBatchOps = {"dot", "gemv", "gemm",
                                                  "spmxv"};
  std::deque<BatchJob> jobs;  // deque: stable addresses for OpDesc pointers
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ss(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ss >> tok) tokens.push_back(tok);
    if (tokens.empty() || tokens.front().front() == '#') continue;

    Args la;
    la.command = tokens.front();
    const bool is_graph = la.command == "graph";
    if (!kBatchOps.count(la.command) && !is_graph) {
      std::fprintf(stderr,
                   "error: %s:%zu: batch supports dot/gemv/gemm/spmxv/graph, "
                   "got '%s'\n",
                   path.c_str(), line_no, la.command.c_str());
      return 1;
    }
    tokens.erase(tokens.begin());
    std::vector<std::string> specs;
    if (is_graph) {
      // Node specs (no leading --) come first; flags follow.
      std::size_t i = 0;
      while (i < tokens.size() && tokens[i].rfind("--", 0) != 0) {
        specs.push_back(tokens[i++]);
      }
      tokens.erase(tokens.begin(),
                   tokens.begin() + static_cast<std::ptrdiff_t>(i));
    }
    static const std::set<std::string> kGraphFlags = {"from-dram"};
    if (!parse_flags(tokens, la.command,
                     is_graph ? kGraphFlags : kCommandFlags.at(la.command),
                     la)) {
      std::fprintf(stderr, "error: %s:%zu: bad op line\n", path.c_str(),
                   line_no);
      return 1;
    }
    for (const char* f :
         {"json", "metrics-out", "trace-out", "trace-filter", "flight-out"}) {
      if (la.flag(f)) {
        std::fprintf(stderr,
                     "error: %s:%zu: '--%s' is per-process, not per-line\n",
                     path.c_str(), line_no, f);
        return 1;
      }
    }

    Rng rng(static_cast<u64>(la.integer("seed", 2005)));
    host::ContextConfig cfg;
    if (want_tel) cfg.telemetry = &session;  // shards merge on completion
    if (is_graph) {
      BatchJob& job = jobs.emplace_back(cfg);
      job.line = line_no;
      job.command = "graph";
      job.is_graph = true;
      const auto src = la.flag("from-dram") ? host::Placement::Dram
                                            : host::Placement::Sram;
      if (specs.empty()) {
        job.parse_error = "graph needs at least one name=kind[:opts] node";
      }
      for (const auto& spec : specs) {
        if (!job.parse_error.empty()) break;
        job.parse_error = add_graph_node(spec, src, rng, job);
      }
      job.n = job.graph.nodes.size();
      continue;
    }
    if (la.command == "dot") {
      cfg.dot_k = static_cast<unsigned>(la.integer("k", 2));
      cfg.dot_mem_bytes_per_s = la.num("bw-gbs", 5.5) * 1e9;
    } else if (la.command == "gemv" || la.command == "spmxv") {
      cfg.gemv_k = static_cast<unsigned>(la.integer("k", 4));
    } else {  // gemm
      const auto n = static_cast<std::size_t>(la.integer("n", 256));
      cfg.mm_k = static_cast<unsigned>(la.integer("k", 8));
      cfg.mm_m = static_cast<unsigned>(la.integer("m", 8));
      cfg.mm_b = static_cast<std::size_t>(la.integer(
          "b", static_cast<long long>(std::min<std::size_t>(512, n))));
      cfg.mm_l = static_cast<unsigned>(la.integer("l", 1));
    }

    BatchJob& job = jobs.emplace_back(cfg);
    job.line = line_no;
    job.command = la.command;
    const auto src = la.flag("from-dram") ? host::Placement::Dram
                                          : host::Placement::Sram;
    if (la.command == "dot") {
      job.n = static_cast<std::size_t>(la.integer("n", 4096));
      job.a = rng.vector(job.n);
      job.b = rng.vector(job.n);
      job.desc = host::OpDesc::dot(job.a, job.b, src);
    } else if (la.command == "gemv") {
      job.n = static_cast<std::size_t>(la.integer("n", 1024));
      const auto arch = la.str("arch", "tree") == "col" ? host::GemvArch::Column
                                                        : host::GemvArch::Tree;
      job.a = rng.matrix(job.n, job.n);
      job.x = rng.vector(job.n);
      job.desc = host::OpDesc::gemv(job.a, job.n, job.n, job.x, src, arch);
    } else if (la.command == "gemm") {
      job.n = static_cast<std::size_t>(la.integer("n", 256));
      job.a = rng.matrix(job.n, job.n);
      job.b = rng.matrix(job.n, job.n);
      job.desc = cfg.mm_l > 1 ? host::OpDesc::gemm_multi(job.a, job.b, job.n)
                              : host::OpDesc::gemm(job.a, job.b, job.n);
    } else {  // spmxv
      job.n = static_cast<std::size_t>(la.integer("n", 1024));
      const auto nnz =
          static_cast<std::size_t>(la.integer("nnz-per-row", 16));
      job.sparse = blas2::make_uniform_sparse(job.n, job.n, nnz, 7);
      job.x = rng.vector(job.n);
      job.desc = host::OpDesc::spmxv(job.sparse, job.x);
    }
  }

  for (auto& job : jobs) {
    if (!job.parse_error.empty()) continue;  // emitted as an error record
    if (job.is_graph) {
      job.gfut = job.ctx.runtime().submit_graph(job.graph);
    } else {
      job.fut = job.ctx.runtime().submit(job.desc);
    }
  }

  std::string out;
  int rc = 0;
  for (auto& job : jobs) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("op", job.command);
    w.kv("line", static_cast<u64>(job.line));
    w.kv("n", static_cast<u64>(job.n));
    try {
      if (!job.parse_error.empty()) throw ConfigError(job.parse_error);
      if (job.is_graph) {
        // One record for the whole graph: a named result per node (each
        // report in its own clock domain) plus the fusion counters and the
        // aggregate report, mirroring host::GraphOutcome.
        const auto outcome = job.gfut.get();
        w.key("nodes");
        w.begin_array();
        for (std::size_t i = 0; i < outcome.nodes.size(); ++i) {
          const auto& nd = job.graph.nodes[i];
          w.begin_object();
          w.kv("name", nd.name);
          w.kv("kind", host::op_kind_name(nd.desc.kind));
          if (nd.desc.kind == host::OpKind::Dot) {
            w.kv("value", outcome.nodes[i].values.at(0));
          }
          w.kv("staging_saved_cycles", outcome.node_staging_saved[i]);
          w.key("report");
          w.raw(telemetry::report_to_json(outcome.nodes[i].report));
          w.end_object();
        }
        w.end_array();
        w.kv("fused_edges", outcome.fused_edges);
        w.kv("shared_operands", outcome.shared_operands);
        w.kv("staging_saved_cycles", outcome.staging_saved_cycles);
        w.key("report");
        w.raw(telemetry::report_to_json(outcome.report));
      } else {
        const auto outcome = job.fut.get();
        if (job.command == "dot") w.kv("value", outcome.values.at(0));
        w.key("report");
        w.raw(telemetry::report_to_json(outcome.report));
      }
    } catch (const std::exception& e) {
      w.kv("error", std::string_view(e.what()));
      rc = 1;
    }
    w.end_object();
    out += w.str();
    out += '\n';
  }

  if (args.flag("out")) {
    if (!write_file(args.str("out", ""), out)) return 1;
  } else {
    std::fputs(out.c_str(), stdout);
  }
  if (want_tel) {
    // Batch --json appends one aggregate summary record after the per-job
    // JSONL records (the writer emits a single line, keeping stdout JSONL).
    if (!finish(args, session, nullptr)) return 1;
  }
  return rc;
}

/// `xdblas_cli tune <op>`: run the design autotuner for one op+shape and
/// print the ranked candidate table (or, with --json, a machine-readable
/// record of every candidate).
int run_tune(const Args& args) {
  host::OpKind kind;
  if (!host::op_kind_from_name(args.str("op", ""), kind)) {
    throw UsageError(cat("unknown op '", args.str("op", ""),
                         "' (try dot, gemv, gemm, gemm_array, gemm_multi, "
                         "spmxv)"));
  }

  host::ContextConfig cfg;
  cfg.sram_banks = static_cast<unsigned>(args.integer("banks", 4));
  cfg.mm_l = static_cast<unsigned>(args.integer("l", 1));

  host::PlanKey key;
  key.kind = kind;
  const auto n = static_cast<std::size_t>(args.integer("n", 1024));
  key.n = n;
  key.rows = static_cast<std::size_t>(args.integer("rows", static_cast<long long>(n)));
  key.cols = static_cast<std::size_t>(args.integer("cols", static_cast<long long>(n)));
  key.batch = static_cast<std::size_t>(args.integer("batch", 0));
  key.placement = args.flag("from-dram") ? host::Placement::Dram
                                         : host::Placement::Sram;
  key.arch = args.str("arch", "tree") == "col" ? host::GemvArch::Column
                                               : host::GemvArch::Tree;
  if (!host::tune_policy_from_name(args.str("policy", "model"), key.tune) ||
      key.tune == host::TunePolicy::Fixed) {
    throw UsageError(cat("--policy expects 'model' or 'probe', got '",
                         args.str("policy", "model"), "'"));
  }

  const host::TuneResult tr = host::tune_op(cfg, key);

  if (args.flag("json")) {
    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("command", args.command);
    w.kv("op", host::op_kind_name(kind));
    w.kv("policy", host::tune_policy_name(key.tune));
    w.kv("considered", static_cast<u64>(tr.considered));
    w.kv("feasible", static_cast<u64>(tr.feasible));
    w.kv("pruned", static_cast<u64>(tr.pruned));
    w.kv("probed", static_cast<u64>(tr.probed));
    w.kv("winner", tr.winner() ? tr.winner()->name() : std::string());
    w.key("candidates");
    w.begin_array();
    for (const auto& c : tr.ranked) {
      w.begin_object();
      w.kv("design", c.name());
      w.kv("feasible", c.feasible);
      w.kv("chosen", c.chosen);
      w.kv("slices", static_cast<u64>(c.area.slices));
      w.kv("clock_mhz", c.area.clock_mhz);
      w.kv("bram_words", c.bram_words);
      w.kv("model_cycles", c.model_cycles);
      w.kv("model_seconds", c.model_seconds);
      w.kv("required_words_per_cycle", c.required_words_per_cycle);
      if (c.probe_cycles > 0) w.kv("probe_cycles", c.probe_cycles);
      if (!c.why_not.empty()) w.kv("why_not", c.why_not);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    std::printf("%s\n", w.str().c_str());
    return tr.winner() ? 0 : 1;
  }

  std::printf("tune %s (%s): %zu candidates, %zu feasible, %zu pruned",
              host::op_kind_name(kind), host::tune_policy_name(key.tune),
              tr.considered, tr.feasible, tr.pruned);
  if (tr.probed > 0) {
    std::printf(", %zu probed (%llu sim cycles)", tr.probed,
                static_cast<unsigned long long>(tr.probe_cycles));
  }
  std::printf("\n");
  TextTable table({"design", "status", "slices", "MHz", "cycles", "ms",
                   "words/cyc", "note"});
  for (const auto& c : tr.ranked) {
    table.row(c.name(),
              c.chosen ? "WINNER" : (c.feasible ? "ok" : "pruned"),
              static_cast<u64>(c.area.slices), TextTable::num(c.area.clock_mhz, 1),
              c.model_cycles, TextTable::num(c.model_seconds * 1e3, 4),
              TextTable::num(c.required_words_per_cycle, 3), c.why_not);
  }
  std::printf("%s", table.render().c_str());
  if (!tr.winner()) {
    std::fprintf(stderr, "error: no feasible design\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage();

  // One session serves all sinks (declared outside the try so the flight
  // recorder survives into the error handler for a post-mortem dump).
  telemetry::Session session;
  try {
    if (args.command == "batch") return run_batch(args);
    if (args.command == "tune") return run_tune(args);
    Rng rng(static_cast<u64>(args.integer("seed", 2005)));
    // Event tracing only turns on when a trace file was requested (emit
    // sites build strings the fast path avoids).
    if (args.flag("trace-out")) session.trace().set_enabled(true);
    const bool json = args.flag("json");

    host::PerfReport report;
    bool have_report = false;

    if (args.command == "dot") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 4096));
      host::ContextConfig cfg;
      cfg.dot_k = static_cast<unsigned>(args.integer("k", 2));
      cfg.dot_mem_bytes_per_s = args.num("bw-gbs", 5.5) * 1e9;
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      const auto src = args.flag("from-dram") ? host::Placement::Dram
                                              : host::Placement::Sram;
      const auto r = ctx.dot(rng.vector(n), rng.vector(n), src);
      if (!json) std::printf("dot(%zu) = %.12g\n", n, r.value);
      report = r.report;
      have_report = true;
    } else if (args.command == "gemv") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 1024));
      host::ContextConfig cfg;
      cfg.gemv_k = static_cast<unsigned>(args.integer("k", 4));
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      const auto arch = args.str("arch", "tree") == "col"
                            ? host::GemvArch::Column
                            : host::GemvArch::Tree;
      const auto src = args.flag("from-dram") ? host::Placement::Dram
                                              : host::Placement::Sram;
      const auto out = ctx.gemv(rng.matrix(n, n), n, n, rng.vector(n), src, arch);
      report = out.report;
      have_report = true;
    } else if (args.command == "gemm") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 256));
      host::ContextConfig cfg;
      cfg.mm_k = static_cast<unsigned>(args.integer("k", 8));
      cfg.mm_m = static_cast<unsigned>(args.integer("m", 8));
      cfg.mm_b = static_cast<std::size_t>(
          args.integer("b", static_cast<long long>(std::min<std::size_t>(512, n))));
      cfg.mm_l = static_cast<unsigned>(args.integer("l", 1));
      cfg.telemetry = &session;
      host::Context ctx(cfg);
      report = cfg.mm_l > 1
                   ? ctx.gemm_multi(rng.matrix(n, n), rng.matrix(n, n), n).report
                   : ctx.gemm(rng.matrix(n, n), rng.matrix(n, n), n).report;
      have_report = true;
    } else if (args.command == "spmxv") {
      const std::size_t n = static_cast<std::size_t>(args.integer("n", 1024));
      const std::size_t nnz =
          static_cast<std::size_t>(args.integer("nnz-per-row", 16));
      blas2::SpmxvConfig cfg;
      cfg.k = static_cast<unsigned>(args.integer("k", 4));
      cfg.telemetry = &session;
      blas2::SpmxvEngine engine(cfg);
      const auto m = blas2::make_uniform_sparse(n, n, nnz, 7);
      const auto out = engine.run(m, rng.vector(n));
      if (!json) {
        std::printf("spmxv %zux%zu, nnz=%zu (density %.2f%%)\n", n, n, m.nnz(),
                    100.0 * m.density());
      }
      report = out.report;
      have_report = true;
    } else if (args.command == "reduce") {
      const std::size_t sets = static_cast<std::size_t>(args.integer("sets", 200));
      const std::size_t size = static_cast<std::size_t>(args.integer("size", 512));
      const unsigned alpha = static_cast<unsigned>(args.integer("alpha", 14));
      require(sets >= 1 && size >= 1, "reduce needs --sets >= 1 and --size >= 1");
      reduce::ReductionCircuit c(alpha);
      if (session.trace().enabled()) c.attach_trace(&session.trace());
      std::size_t done = 0, si = 0, ei = 0;
      u64 cycles = 0;
      while (done < sets) {
        std::optional<reduce::Input> in;
        if (si < sets) {
          in = reduce::Input{fp::to_bits(rng.uniform(-1, 1)), ei + 1 == size};
        }
        const bool consumed = c.cycle(in);
        ++cycles;
        if (in && consumed && ++ei == size) {
          ei = 0;
          ++si;
        }
        if (c.take_result()) ++done;
      }
      session.phase("compute", cycles);
      c.publish(session.metrics(), "reduce.cli");
      if (!json) {
        std::printf("reduced %zu sets of %zu in %llu cycles "
                    "(inputs %zu, tail %llu, bound 2a^2 = %u)\n",
                    sets, size, static_cast<unsigned long long>(cycles),
                    sets * size,
                    static_cast<unsigned long long>(cycles - sets * size),
                    2 * alpha * alpha);
        std::printf("stalls %llu, peak buffer %zu (bound %u), adder util %.1f%%\n",
                    static_cast<unsigned long long>(c.stats().stall_cycles),
                    c.stats().peak_buffer_words, alpha * alpha,
                    100.0 * c.adder_utilization());
      }
    } else if (args.command == "explore") {
      const auto dev = machine::device_by_name(args.str("device", "XC2VP50"));
      machine::AreaModel area;
      std::printf("%s: %u slices, %llu BRAM words; max GEMM PEs %u "
                  "(standalone) / %u (XD1)\n",
                  dev.name.c_str(), dev.slices,
                  static_cast<unsigned long long>(dev.bram_words()),
                  area.max_mm_pes(dev, false), area.max_mm_pes(dev, true));
      for (const auto& p : model::figure9(area, dev)) {
        std::printf("  k=%2u: %5u slices, %.0f MHz, %.2f GFLOPS\n", p.k,
                    p.slices, p.clock_mhz, p.gflops);
      }
    }

    if (have_report && !json) print_report(report);
    if (!finish(args, session, have_report ? &report : nullptr)) return 1;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // Post-mortem: the ops leading up to the failure, to stderr and (when
    // requested) the --flight-out file.
    if (session.flight().total() > 0) {
      const std::string dump = telemetry::flight_to_json(session.flight());
      std::fprintf(stderr, "flight recorder: %s\n", dump.c_str());
      if (args.flag("flight-out")) {
        write_file(args.str("flight-out", ""), dump);
      }
    }
    return 1;
  }
  return 0;
}
