// Strict JSON well-formedness check for the telemetry exports (RFC 8259,
// one document per file). Exit 0 when every argument parses, 1 otherwise —
// used by ctest to validate the CLI's --json / --metrics-out / --trace-out
// outputs without any external tooling.
//
//   json_validate FILE [FILE...]
//   json_validate --lines FILE [...]   JSONL: every nonempty line is one doc
//   xdblas_cli dot --n 256 --json | json_validate -     (read stdin)
#include <cstdio>
#include <cstring>
#include <string>

#include "telemetry/json.hpp"

namespace {

bool read_all(std::FILE* f, std::string& out) {
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  return !std::ferror(f);
}

int check(const std::string& name, const std::string& text) {
  std::string error;
  if (!xd::telemetry::json_validate(text, &error)) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), error.c_str());
    return 1;
  }
  std::printf("%s: valid JSON (%zu bytes)\n", name.c_str(), text.size());
  return 0;
}

/// JSONL: validate each nonempty line as its own document (the batch
/// runner's output format). An empty file is an error — a silently empty
/// batch output should not pass the fixture.
int check_lines(const std::string& name, const std::string& text) {
  int rc = 0;
  std::size_t docs = 0, line_no = 0, pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string line =
        text.substr(pos, nl == std::string::npos ? nl : nl - pos);
    ++line_no;
    if (!line.empty()) {
      ++docs;
      std::string error;
      if (!xd::telemetry::json_validate(line, &error)) {
        std::fprintf(stderr, "%s:%zu: %s\n", name.c_str(), line_no,
                     error.c_str());
        rc = 1;
      }
    }
    if (nl == std::string::npos) break;
    pos = nl + 1;
  }
  if (docs == 0) {
    std::fprintf(stderr, "%s: no JSON lines\n", name.c_str());
    return 1;
  }
  if (rc == 0) {
    std::printf("%s: %zu valid JSON lines (%zu bytes)\n", name.c_str(), docs,
                text.size());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  int first = 1;
  bool lines = false;
  if (first < argc && std::strcmp(argv[first], "--lines") == 0) {
    lines = true;
    ++first;
  }
  if (first >= argc) {
    std::fprintf(stderr, "usage: json_validate [--lines] <file|-> [file...]\n");
    return 2;
  }
  int rc = 0;
  for (int i = first; i < argc; ++i) {
    const std::string name = argv[i];
    std::string text;
    if (name == "-") {
      if (!read_all(stdin, text)) {
        std::fprintf(stderr, "stdin: read error\n");
        rc = 1;
        continue;
      }
      rc |= lines ? check_lines("stdin", text) : check("stdin", text);
    } else {
      std::FILE* f = std::fopen(name.c_str(), "rb");
      if (!f || !read_all(f, text)) {
        std::fprintf(stderr, "%s: cannot read\n", name.c_str());
        if (f) std::fclose(f);
        rc = 1;
        continue;
      }
      std::fclose(f);
      rc |= lines ? check_lines(name, text) : check(name, text);
    }
  }
  return rc;
}
