// Strict JSON well-formedness check for the telemetry exports (RFC 8259,
// one document per file). Exit 0 when every argument parses, 1 otherwise —
// used by ctest to validate the CLI's --json / --metrics-out / --trace-out
// outputs without any external tooling.
//
//   json_validate FILE [FILE...]
//   xdblas_cli dot --n 256 --json | json_validate -     (read stdin)
#include <cstdio>
#include <string>

#include "telemetry/json.hpp"

namespace {

bool read_all(std::FILE* f, std::string& out) {
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, got);
  return !std::ferror(f);
}

int check(const std::string& name, const std::string& text) {
  std::string error;
  if (!xd::telemetry::json_validate(text, &error)) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), error.c_str());
    return 1;
  }
  std::printf("%s: valid JSON (%zu bytes)\n", name.c_str(), text.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: json_validate <file|-> [file...]\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string name = argv[i];
    std::string text;
    if (name == "-") {
      if (!read_all(stdin, text)) {
        std::fprintf(stderr, "stdin: read error\n");
        rc = 1;
        continue;
      }
      rc |= check("stdin", text);
    } else {
      std::FILE* f = std::fopen(name.c_str(), "rb");
      if (!f || !read_all(f, text)) {
        std::fprintf(stderr, "%s: cannot read\n", name.c_str());
        if (f) std::fclose(f);
        rc = 1;
        continue;
      }
      std::fclose(f);
      rc |= check(name, text);
    }
  }
  return rc;
}
