// xdblas_serve: the TCP serving daemon (docs/serving.md).
//
//   xdblas_serve [--host H] [--port P] [--max-inflight N] [--reply-queue N]
//                [--backlog N] [--max-n N] [--max-elems N]
//                [--max-graph-nodes N] [--send-timeout-ms MS]
//                [--metrics-out FILE]
//
// Listens on H:P (default 127.0.0.1, ephemeral port) and speaks the batch
// JSONL protocol over every accepted connection: one request line in, one
// JSON record out, in order, multiplexing all clients onto one shared
// Runtime + PlanCache. On startup it prints exactly one line to stdout —
//
//   xdblas_serve listening on 127.0.0.1:PORT
//
// — so scripts can scrape the bound port. SIGTERM/SIGINT trigger a graceful
// drain: stop accepting, finish every admitted op, flush all replies, then
// exit 0. With --metrics-out the merged telemetry registry (host.runtime.*
// histograms, serve.* gauges) is exported as JSON after the drain.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/server.hpp"
#include "telemetry/export.hpp"

using namespace xd;

namespace {

std::atomic<int> g_listener_fd{-1};

/// Async-signal-safe: shutdown() is a raw syscall; it wakes the accept
/// loop, which returns from serve() into the ordinary drain path.
void on_signal(int) {
  const int fd = g_listener_fd.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

int usage() {
  std::fprintf(stderr,
               "usage: xdblas_serve [--host H] [--port P] [--max-inflight N]"
               " [--reply-queue N] [--backlog N]\n"
               "                    [--max-n N] [--max-elems N]"
               " [--max-graph-nodes N]\n"
               "                    [--send-timeout-ms MS]"
               " [--metrics-out FILE]\n");
  return 2;
}

bool to_size(const char* s, long long& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0' && errno != ERANGE && out >= 0;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "error: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fflush(f) == 0 && ok;
  if (ok && ::fsync(::fileno(f)) != 0 &&
      errno != EINVAL && errno != ENOTSUP && errno != ENOTTY) {
    ok = false;
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) std::fprintf(stderr, "error: write to '%s' failed\n", path.c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerConfig cfg;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    long long n = 0;
    if (flag == "--host" && val) {
      cfg.host = val;
      ++i;
    } else if (flag == "--port" && val && to_size(val, n) && n <= 65535) {
      cfg.port = static_cast<std::uint16_t>(n);
      ++i;
    } else if (flag == "--max-inflight" && val && to_size(val, n) && n > 0) {
      cfg.max_inflight = static_cast<std::size_t>(n);
      ++i;
    } else if (flag == "--reply-queue" && val && to_size(val, n) && n > 0) {
      cfg.reply_queue = static_cast<std::size_t>(n);
      ++i;
    } else if (flag == "--backlog" && val && to_size(val, n) && n > 0) {
      cfg.backlog = static_cast<int>(n);
      ++i;
    } else if (flag == "--max-n" && val && to_size(val, n) && n > 0 &&
               n <= static_cast<long long>(serve::ParseLimits{}.max_n)) {
      // Capped at the compiled-in default so n*n can never overflow.
      cfg.limits.max_n = static_cast<std::size_t>(n);
      ++i;
    } else if (flag == "--max-elems" && val && to_size(val, n) && n > 0) {
      cfg.limits.max_elems = static_cast<std::size_t>(n);
      ++i;
    } else if (flag == "--max-graph-nodes" && val && to_size(val, n) && n > 0) {
      cfg.limits.max_graph_nodes = static_cast<std::size_t>(n);
      ++i;
    } else if (flag == "--send-timeout-ms" && val && to_size(val, n) &&
               n <= 3600 * 1000) {
      cfg.send_timeout_ms = static_cast<int>(n);  // 0 disables the bound
      ++i;
    } else if (flag == "--metrics-out" && val) {
      metrics_out = val;
      ++i;
    } else {
      std::fprintf(stderr, "error: bad flag/value at '%s'\n", flag.c_str());
      return usage();
    }
  }

  try {
    serve::Server server(cfg);
    g_listener_fd.store(server.listener_fd());
    struct sigaction sa{};
    sa.sa_handler = on_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::printf("xdblas_serve listening on %s:%u\n", cfg.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    server.serve();   // blocks until the listener dies (signal or error)
    server.drain();   // finish in-flight, flush replies, join connections

    const auto c = server.counters();
    std::fprintf(stderr,
                 "xdblas_serve drained: %llu conns, %llu lines, "
                 "%llu completed, %llu errors, %llu shed\n",
                 static_cast<unsigned long long>(c.accepted),
                 static_cast<unsigned long long>(c.lines),
                 static_cast<unsigned long long>(c.completed),
                 static_cast<unsigned long long>(c.errors),
                 static_cast<unsigned long long>(c.shed));
    if (!metrics_out.empty()) {
      auto lock = server.telemetry().lock();
      const std::string text =
          telemetry::metrics_to_json(server.telemetry().metrics());
      lock.unlock();
      if (!write_file(metrics_out, text)) return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
