// xdblas_load: load generator + correctness checker for xdblas_serve
// (docs/serving.md).
//
//   xdblas_load --port P [--host H] [--conns N] [--ops M] [--graphs]
//               [--seed S] [--no-verify] [--out FILE] [--op NAME]
//   xdblas_load --self [--conns N] [--ops M] ...       # in-process server
//
// Opens N concurrent connections, streams the same deterministic mix of M
// op lines (dot/gemv/spmxv/gemm, plus fused graph records with --graphs)
// down each, and reads the response records back. Before touching the
// network it executes the identical lines sequentially on a local Runtime,
// so every response's `values_fnv` digest and simulated cycle count can be
// checked bit-for-bit against a single-threaded run — the protocol-level
// version of the runtime's determinism invariant. It then queries the
// server's `stats` control record for the host.runtime.* latency
// percentiles and emits one bench JSONL record:
//
//   {"event":"serve_bench","op":...,"conns":N,"ops":...,"completed":...,
//    "errors":...,"shed":...,"bits_equal":true,"cycles":...,
//    "ops_per_sec":...,"p50_us":...,"p99_us":...}
//
// `cycles` is the deterministic per-connection workload total (gated hard
// by tools/bench_compare); ops_per_sec/p50_us/p99_us are wall-clock and
// compared with the perf threshold. --self spins the server up in-process
// on an ephemeral port, which is how BENCH_serve.json is (re)generated.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/server.hpp"
#include "telemetry/json.hpp"

using namespace xd;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: xdblas_load (--port P | --self) [--host H] [--conns N]"
               " [--ops M]\n"
               "                   [--graphs] [--seed S] [--no-verify]"
               " [--out FILE] [--op NAME]\n"
               "                   [--max-inflight N]\n");
  return 2;
}

bool to_ll(const char* s, long long& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0' && errno != ERANGE && out >= 0;
}

/// The deterministic workload: one request line per op, mixed shapes. Every
/// connection sends this same set, so N-way concurrency is checked against
/// one local sequential execution of one set.
std::vector<std::string> make_lines(std::size_t ops, bool graphs, u64 seed) {
  std::vector<std::string> lines;
  lines.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    const u64 s = seed + i;
    std::string l;
    if (graphs && i % 5 == 4) {
      l = cat("graph ap=gemv:n=96 pap=dot:n=96,b=@ap --from-dram --seed ", s);
    } else {
      switch (i % 4) {
        case 0: l = cat("dot --n 1024 --seed ", s); break;
        case 1: l = cat("gemv --n 96 --seed ", s); break;
        case 2: l = cat("spmxv --n 128 --nnz-per-row 8 --seed ", s); break;
        default: l = cat("gemm --n 32 --seed ", s); break;
      }
    }
    lines.push_back(std::move(l));
  }
  return lines;
}

std::string fnv_hex(u64 h) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

struct Expected {
  bool error = false;   ///< the line is expected to answer with an error
  std::string fnv;      ///< record-level values_fnv (16 hex digits)
  u64 cycles = 0;       ///< record-level report cycles
};

/// Execute the workload once, sequentially, on a local Runtime with the
/// same (default) engine configuration the server runs.
std::vector<Expected> run_local(const std::vector<std::string>& lines) {
  host::ContextConfig base;
  host::Runtime rt(base);
  std::vector<Expected> exp;
  exp.reserve(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    Expected e;
    serve::Request req;
    serve::parse_record(lines[i], i + 1, base, req);
    if (!req.parse_error.empty() || req.cfg_override) {
      e.error = true;
    } else if (req.is_graph) {
      const auto go = rt.run_graph(req.graph);
      u64 all = serve::kFnvBasis;
      for (const auto& node : go.nodes) all = serve::values_fnv(node.values, all);
      e.fnv = fnv_hex(all);
      e.cycles = go.report.cycles;
    } else {
      const auto out = rt.run(req.desc);
      e.fnv = fnv_hex(serve::values_fnv(out.values));
      e.cycles = out.report.cycles;
    }
    exp.push_back(std::move(e));
  }
  return exp;
}

/// Last `"key":"..."` string value in `rec`, or "" when absent.
std::string last_str(const std::string& rec, const std::string& key) {
  const std::string pat = cat("\"", key, "\":\"");
  const auto pos = rec.rfind(pat);
  if (pos == std::string::npos) return "";
  const auto start = pos + pat.size();
  const auto end = rec.find('"', start);
  return end == std::string::npos ? "" : rec.substr(start, end - start);
}

/// Numeric value of `"key":N` at/after `from`; false when absent.
bool num_after(const std::string& rec, const std::string& key,
               std::size_t from, double& out) {
  const std::string pat = cat("\"", key, "\":");
  const auto pos = rec.find(pat, from);
  if (pos == std::string::npos) return false;
  out = std::strtod(rec.c_str() + pos + pat.size(), nullptr);
  return true;
}

struct ConnResult {
  std::size_t responses = 0;
  std::size_t completed = 0;   ///< outcome records
  std::size_t errors = 0;      ///< error records other than "overloaded"
  std::size_t shed = 0;        ///< {"error":"overloaded"} records
  std::size_t mismatches = 0;  ///< digest or cycle disagreement
  bool io_ok = true;           ///< all lines sent, one response per record
};

void run_conn(const std::string& host, std::uint16_t port,
              const std::vector<std::string>& lines,
              const std::vector<Expected>& exp, bool verify, ConnResult& r) {
  try {
    Socket sock = tcp_connect(host, port);
    std::string payload;
    for (const auto& l : lines) {
      payload += l;
      payload += '\n';
    }
    if (!sock.send_all(payload)) {
      r.io_ok = false;
      return;
    }
    sock.shutdown_write();  // server replies, then sees EOF and closes

    LineFramer framer(1 << 20);
    char buf[8192];
    std::string rec;
    bool truncated = false;
    while (r.responses < lines.size()) {
      const long got = sock.recv_some(buf, sizeof buf);
      if (got <= 0) break;
      framer.feed(buf, static_cast<std::size_t>(got));
      while (framer.next(rec, truncated)) {
        const std::size_t idx = r.responses++;
        const std::string err = last_str(rec, "error");
        if (err == "overloaded") {
          ++r.shed;
          continue;
        }
        if (!err.empty()) {
          ++r.errors;
          if (verify && idx < exp.size() && !exp[idx].error) ++r.mismatches;
          continue;
        }
        ++r.completed;
        if (!verify || idx >= exp.size()) continue;
        // Record-level digest/cycles: last values_fnv and the cycles of the
        // last (aggregate) report — identical extraction for op and graph
        // records.
        const std::string fnv = last_str(rec, "values_fnv");
        double cyc = 0;
        const auto rep = rec.rfind("\"report\":{");
        const bool have_cyc =
            rep != std::string::npos && num_after(rec, "cycles", rep, cyc);
        if (exp[idx].error || fnv != exp[idx].fnv || !have_cyc ||
            static_cast<u64>(cyc) != exp[idx].cycles) {
          ++r.mismatches;
        }
      }
    }
    if (r.responses != lines.size()) r.io_ok = false;
  } catch (const std::exception&) {
    r.io_ok = false;
  }
}

/// One `stats` round-trip on a fresh connection.
std::string fetch_stats(const std::string& host, std::uint16_t port) {
  Socket sock = tcp_connect(host, port);
  if (!sock.send_all(std::string_view("stats\n"))) return "";
  sock.shutdown_write();
  LineFramer framer(1 << 20);
  char buf[4096];
  std::string rec;
  bool truncated = false;
  for (;;) {
    const long got = sock.recv_some(buf, sizeof buf);
    if (got <= 0) return "";
    framer.feed(buf, static_cast<std::size_t>(got));
    if (framer.next(rec, truncated)) return rec;
  }
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fflush(f) == 0 && ok;
  if (ok && ::fsync(::fileno(f)) != 0 &&
      errno != EINVAL && errno != ENOTSUP && errno != ENOTTY) {
    ok = false;
  }
  return (std::fclose(f) == 0) && ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  bool self = false, graphs = false, verify = true;
  std::size_t conns = 4, ops = 16, max_inflight = 256;
  u64 seed = 2005;
  std::string out_path, op_name = "serve_mixed";

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* val = i + 1 < argc ? argv[i + 1] : nullptr;
    long long n = 0;
    if (flag == "--host" && val) {
      host = val;
      ++i;
    } else if (flag == "--port" && val && to_ll(val, n) && n <= 65535) {
      port = static_cast<std::uint16_t>(n);
      ++i;
    } else if (flag == "--conns" && val && to_ll(val, n) && n > 0) {
      conns = static_cast<std::size_t>(n);
      ++i;
    } else if (flag == "--ops" && val && to_ll(val, n) && n > 0) {
      ops = static_cast<std::size_t>(n);
      ++i;
    } else if (flag == "--max-inflight" && val && to_ll(val, n) && n > 0) {
      max_inflight = static_cast<std::size_t>(n);
      ++i;
    } else if (flag == "--seed" && val && to_ll(val, n)) {
      seed = static_cast<u64>(n);
      ++i;
    } else if (flag == "--out" && val) {
      out_path = val;
      ++i;
    } else if (flag == "--op" && val) {
      op_name = val;
      ++i;
    } else if (flag == "--self") {
      self = true;
    } else if (flag == "--graphs") {
      graphs = true;
    } else if (flag == "--no-verify") {
      verify = false;
    } else {
      std::fprintf(stderr, "error: bad flag/value at '%s'\n", flag.c_str());
      return usage();
    }
  }
  if (!self && port == 0) {
    std::fprintf(stderr, "error: need --port (or --self)\n");
    return usage();
  }

  try {
    // --self: in-process server on an ephemeral loopback port.
    std::unique_ptr<serve::Server> server;
    std::thread server_thread;
    if (self) {
      serve::ServerConfig scfg;
      scfg.max_inflight = max_inflight;
      server = std::make_unique<serve::Server>(scfg);
      port = server->port();
      server_thread = std::thread([&] { server->serve(); });
    }

    const auto lines = make_lines(ops, graphs, seed);
    const auto exp = verify ? run_local(lines) : std::vector<Expected>{};
    u64 workload_cycles = 0;
    for (const auto& e : exp) workload_cycles += e.cycles;

    std::vector<ConnResult> results(conns);
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t c = 0; c < conns; ++c) {
      threads.emplace_back([&, c] {
        run_conn(host, port, lines, exp, verify, results[c]);
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    ConnResult total;
    for (const auto& r : results) {
      total.responses += r.responses;
      total.completed += r.completed;
      total.errors += r.errors;
      total.shed += r.shed;
      total.mismatches += r.mismatches;
      total.io_ok = total.io_ok && r.io_ok;
    }

    const std::string stats = fetch_stats(host, port);
    double p50 = 0, p95 = 0, p99 = 0, shed_srv = 0;
    num_after(stats, "e2e_p50_us", 0, p50);
    num_after(stats, "e2e_p95_us", 0, p95);
    num_after(stats, "e2e_p99_us", 0, p99);
    num_after(stats, "shed", 0, shed_srv);
    double plan_hit_rate = 0, plan_pinned = 0, steals = 0, local_pops = 0;
    num_after(stats, "plan_hit_rate", 0, plan_hit_rate);
    num_after(stats, "plan_pinned", 0, plan_pinned);
    num_after(stats, "pool_steals", 0, steals);
    num_after(stats, "pool_local_pops", 0, local_pops);

    if (self) {
      server->drain();
      server_thread.join();
    }

    const bool bits_equal =
        total.io_ok && (!verify || total.mismatches == 0);
    const double ops_per_sec =
        wall_s > 0 ? static_cast<double>(total.completed) / wall_s : 0.0;

    telemetry::JsonWriter w;
    w.begin_object();
    w.kv("event", std::string_view("serve_bench"));
    w.kv("op", op_name);
    w.kv("conns", static_cast<u64>(conns));
    w.kv("ops", static_cast<u64>(ops * conns));
    w.kv("completed", static_cast<u64>(total.completed));
    w.kv("errors", static_cast<u64>(total.errors));
    w.kv("shed", static_cast<u64>(total.shed));
    w.kv("server_shed", shed_srv);
    w.kv("bits_equal", bits_equal);
    w.kv("verified", verify);
    w.kv("cycles", workload_cycles);
    w.kv("ops_per_sec", ops_per_sec);
    w.kv("p50_us", p50);
    w.kv("p95_us", p95);
    w.kv("p99_us", p99);
    w.kv("plan_hit_rate", plan_hit_rate);
    w.kv("plan_pinned", static_cast<u64>(plan_pinned));
    w.kv("pool_steals", static_cast<u64>(steals));
    w.kv("pool_local_pops", static_cast<u64>(local_pops));
    w.end_object();
    const std::string rec = w.str() + "\n";
    if (out_path.empty()) {
      std::fputs(rec.c_str(), stdout);
      if (std::fflush(stdout) != 0) return 1;
    } else if (!write_file(out_path, rec)) {
      std::fprintf(stderr, "error: write to '%s' failed\n", out_path.c_str());
      return 1;
    }

    std::fprintf(stderr,
                 "xdblas_load: %zu conns x %zu ops in %.2fs — "
                 "%.0f ops/s, p50 %.0fus p99 %.0fus, %zu errors, %zu shed, "
                 "plan hit %.0f%% (%.0f pinned), pool %.0f local/%.0f "
                 "stolen%s\n",
                 conns, ops, wall_s, ops_per_sec, p50, p99, total.errors,
                 total.shed, 100.0 * plan_hit_rate, plan_pinned, local_pops,
                 steals, bits_equal ? "" : " [MISMATCH]");
    return bits_equal ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
