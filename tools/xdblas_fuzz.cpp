// xdblas_fuzz: command-line driver for the differential fuzz harness.
//
//   xdblas_fuzz --seed 2005 --ops 500          # deterministic seeded sweep
//   xdblas_fuzz --time-budget 5000             # randomized wall-clock pass
//   xdblas_fuzz --replay tests/corpus/regressions.fz
//   xdblas_fuzz --one "xdfuzz1 kind=dot cols=4 vseed=1"
//
// Exit status: 0 when every case passed, 1 on any invariant failure or
// usage error. Shrunk failures are appended to --corpus (when given) so a
// CI failure leaves a replayable artifact behind.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/util.hpp"
#include "testing/fuzz.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed S] [--ops N] [--time-budget MS]\n"
               "          [--corpus FILE] [--max-failures N] [--verbose]\n"
               "       %s --replay FILE\n"
               "       %s --one \"xdfuzz1 kind=... key=value ...\"\n",
               argv0, argv0, argv0);
  return 1;
}

xd::u64 parse_u64(const char* flag, const char* val) {
  std::size_t used = 0;
  const xd::u64 v = std::stoull(val, &used);
  xd::require(used == std::strlen(val) && used > 0,
              xd::cat(flag, " expects a non-negative integer, got '", val, "'"));
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xd::testing;
  FuzzOptions opts;
  std::string replay_path;
  std::string one_line;
  bool ops_given = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&]() -> const char* {
        xd::require(i + 1 < argc, xd::cat(arg, " needs a value"));
        return argv[++i];
      };
      if (arg == "--seed") {
        opts.seed = parse_u64("--seed", value());
      } else if (arg == "--ops") {
        opts.ops = parse_u64("--ops", value());
        ops_given = true;
      } else if (arg == "--time-budget") {
        opts.time_budget_ms = parse_u64("--time-budget", value());
      } else if (arg == "--corpus") {
        opts.corpus_out = value();
      } else if (arg == "--max-failures") {
        opts.max_failures = parse_u64("--max-failures", value());
      } else if (arg == "--verbose") {
        opts.verbose = true;
      } else if (arg == "--replay") {
        replay_path = value();
      } else if (arg == "--one") {
        one_line = value();
      } else if (arg == "--help" || arg == "-h") {
        usage(argv[0]);
        return 0;
      } else {
        std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
        return usage(argv[0]);
      }
    }

    if (!one_line.empty()) {
      const FuzzCase fc = FuzzCase::from_line(one_line);
      if (const auto fail = check_case(fc)) {
        std::printf("FAIL [%s] %s\n", fail->invariant.c_str(),
                    fail->detail.c_str());
        return 1;
      }
      std::printf("ok: %s\n", fc.to_line().c_str());
      return 0;
    }

    if (!replay_path.empty()) {
      return replay_corpus(replay_path).failures == 0 ? 0 : 1;
    }

    xd::require(!(ops_given && opts.time_budget_ms),
                "--ops and --time-budget are mutually exclusive");
    std::printf("xdblas_fuzz seed=%llu %s\n",
                static_cast<unsigned long long>(opts.seed),
                opts.time_budget_ms
                    ? xd::cat("time_budget_ms=", opts.time_budget_ms).c_str()
                    : xd::cat("ops=", opts.ops).c_str());
    return run_fuzz(opts).failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
